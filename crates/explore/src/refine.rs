//! Adaptive front refinement: approximate the exhaustive grid's Pareto
//! front while evaluating only a fraction of its cells, steering through a
//! selectable tradeoff plane ([`RefineOptions::objectives`]).
//!
//! The paper's Table-4 exploration evaluates a full clock × latency × II
//! grid. That is exact but scales as the product of the axes; the searches
//! in the space/time-scaling literature instead *steer* evaluation toward
//! the front. This driver does the same over the repo's grids:
//!
//! 1. evaluate a coarse **seed** (the corner and midpoint of each axis, all
//!    pipeline modes),
//! 2. extract the **tradeoff staircase** in the selected objective space's
//!    plane ([`crate::pareto::staircase_indices_in`]) — the Table-4
//!    area/delay curve under the default space, the area/power curve under
//!    `--objectives area,power` — and measure the normalized gap between
//!    each pair of adjacent staircase points (the full four-objective
//!    front approaches the whole grid on realistic workloads, so it cannot
//!    drive convergence; a two-axis staircase can),
//! 3. **bisect** the wide gaps — in axis-index space, so every refined
//!    cell is a cell of the exhaustive grid and the memo cache dedupes
//!    re-derived neighborhoods — escalating per gap from index midpoints
//!    to rectangle corners to the endpoints' axis neighbors, and skipping
//!    candidates whose exact, closed-form value on an *exact* plane axis
//!    (latency/throughput, via [`adhls_core::dse::grid_item_time_ps`])
//!    lies outside the gap's window on that axis — planes without an
//!    exact axis (e.g. area/power) simply keep every candidate,
//! 4. **prune** interior candidates that provably cannot matter: latency
//!    and throughput of a grid cell are exact without evaluation, and its
//!    area/power are bounded below by the better of the two bracketing
//!    staircase points (the monotone-interpolation bound), so if that
//!    optimistic corner is already dominated by the current front the real
//!    evaluation cannot do better,
//! 5. stop when every gap is within tolerance, the point budget is spent,
//!    or a round produces nothing new.
//!
//! One plane-specific wrinkle: a staircase needs two points before any gap
//! exists. A plane whose axes are both evaluated quantities — area/power,
//! say — can seed to a *single* non-dominated corner cell even though the
//! true plane front holds more; refinement then densifies that point's
//! axis neighborhood until the staircase grows or the neighborhood is
//! exhausted, instead of declaring premature convergence. Planes with a
//! closed-form axis (latency/throughput) skip this: their seed corners
//! already span the exact axis, so a one-point staircase is treated as
//! converged — exactly the pre-redesign behavior of the default plane.
//!
//! The driver is deterministic: candidate generation iterates the front in
//! its deterministic order, candidate batches are sorted by cell index, and
//! evaluation goes through an [`Evaluator`] whose rows are bit-identical to
//! serial evaluation — so two refinements of the same grid (serial,
//! parallel, or racing each other on one shared pool) produce the same
//! rows, front, and trace.

use crate::constraint::{constraints_from_json, validate_constraints, Constraint};
use crate::engine::{Engine, SweepResult};
use crate::pareto::{
    dominates, objectives, pareto_indices_in_constrained, staircase_indices_in, Objective,
    ObjectiveSpace, Objectives, Sense,
};
use crate::pool::EvaluatorPool;
use crate::sweep::{SweepCell, SweepGrid};
use adhls_core::dse::{grid_item_time_ps, DsePoint, DseRow};
use adhls_core::PointMode;
use adhls_ir::{Design, Error, Result};
use std::collections::{HashMap, HashSet};

/// Anything that can evaluate a batch of points: the per-sweep
/// [`Engine`] or the persistent [`EvaluatorPool`]. Rows must come back in
/// input order, bit-identical to serial evaluation (both implementors
/// guarantee this).
pub trait Evaluator {
    /// Evaluates `points`, returning rows in input order.
    ///
    /// # Errors
    ///
    /// Propagates scheduling failures per the implementor's policy (strict
    /// evaluators fail the batch; skip-infeasible evaluators record them).
    fn evaluate_points(&self, points: &[DsePoint]) -> Result<SweepResult>;

    /// Evaluates `points` in an explicit [`PointMode`]. The default
    /// ignores the mode and delegates to [`Evaluator::evaluate_points`] —
    /// right for mode-unaware evaluators, whose single behavior *is*
    /// their full evaluation; [`Engine`] and [`EvaluatorPool`] override
    /// it with their per-call mode entries.
    ///
    /// # Errors
    ///
    /// As [`Evaluator::evaluate_points`].
    fn evaluate_points_mode(&self, points: &[DsePoint], mode: PointMode) -> Result<SweepResult> {
        let _ = mode;
        self.evaluate_points(points)
    }
}

impl Evaluator for Engine<'_> {
    fn evaluate_points(&self, points: &[DsePoint]) -> Result<SweepResult> {
        self.evaluate(points)
    }

    fn evaluate_points_mode(&self, points: &[DsePoint], mode: PointMode) -> Result<SweepResult> {
        self.evaluate_mode(points, mode)
    }
}

impl Evaluator for EvaluatorPool {
    fn evaluate_points(&self, points: &[DsePoint]) -> Result<SweepResult> {
        self.evaluate(points)
    }

    fn evaluate_points_mode(&self, points: &[DsePoint], mode: PointMode) -> Result<SweepResult> {
        self.evaluate_mode(points, mode)
    }
}

/// Tuning knobs for [`refine`] (and, per plane, for [`refine_multi`]).
///
/// The default refines the paper's (area, latency) plane to a 5%
/// normalized gap with no evaluation budget; each field tightens or
/// redirects that:
///
/// ```
/// use adhls_explore::constraint::Constraint;
/// use adhls_explore::pareto::ObjectiveSpace;
/// use adhls_explore::refine::RefineOptions;
///
/// let opts = RefineOptions {
///     // Steer through the power plane instead of the default
///     // (area, latency) tradeoff...
///     objectives: ObjectiveSpace::parse("area,power").unwrap(),
///     // ...only inside the area budget...
///     constraints: vec![Constraint::parse("area<=1500").unwrap()],
///     // ...spending at most 40 HLS evaluations.
///     budget: 40,
///     ..Default::default()
/// };
/// assert_eq!(opts.gap_tol, 0.05, "defaults fill the rest");
/// assert!(opts.warm_start.is_empty());
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct RefineOptions {
    /// Maximum number of grid cells to evaluate, seed included
    /// (`0` = no budget: refine until the tolerance is met or the grid is
    /// exhausted).
    pub budget: usize,
    /// Stop once no adjacent pair of tradeoff-staircase points is farther
    /// apart than this, measured as the Chebyshev distance in
    /// (area, latency) normalized by the staircase's bounding box.
    /// Non-finite or negative values are treated as `0.0` (refine until
    /// nothing new appears).
    pub gap_tol: f64,
    /// Safety valve on refinement rounds (`0` = seed only).
    pub max_rounds: usize,
    /// Warm-start cells — typically a previous run's exported front (see
    /// [`warm_start_cells`]) — evaluated with the seed so refinement
    /// resumes from the old front instead of re-deriving it. Cells that
    /// name no cell of this grid are ignored; on a shared
    /// [`EvaluatorPool`] the warm cells are usually cache hits, making a
    /// warm re-refinement nearly free.
    pub warm_start: Vec<SweepCell>,
    /// The objective space whose plane (its first two axes) steers the
    /// refinement: staircase extraction, gap measurement, and candidate
    /// windowing all happen in this plane. Defaults to the paper's
    /// (area, latency) tradeoff; `area,power` gives power-aware
    /// refinement. The reported [`RefineResult::front`] stays the full
    /// four-objective front in every space (see [`RefineResult`]).
    pub objectives: ObjectiveSpace,
    /// Objective bounds restricting the exploration to the feasible
    /// region (`area<=1500`, `latency<=4000`, …). The staircase, its
    /// gaps, and the reported front only ever see feasible rows;
    /// candidate windows are clipped to the feasible interval on
    /// closed-form axes, and cells *provably* infeasible (exact
    /// latency/throughput outside a bound, or an optimistic area/power
    /// lower bound already over a `<=` budget) are skipped without
    /// evaluation. Every constraint's axis must be selected by
    /// [`RefineOptions::objectives`] (see
    /// [`crate::constraint::validate_constraints`]); empty = the
    /// unconstrained refinement, bit-identical to pre-constraint
    /// behavior.
    pub constraints: Vec<Constraint>,
    /// Cooperative cancellation token, checked **between rounds** (never
    /// mid-round, so rows and trace stay a prefix of the uncancelled
    /// run's). `None` = not cancellable. See [`CancelToken`].
    pub cancel: Option<CancelToken>,
    /// How refined cells are evaluated: full two-flow synthesis (default),
    /// the slack-recovery generator, or a per-cell automatic choice
    /// ([`PointMode::Auto`] — recovery where the cell's latency budget
    /// leaves positive slack, full otherwise). Applies to every cell the
    /// refinement submits, seed included.
    pub point_mode: PointMode,
}

impl Default for RefineOptions {
    fn default() -> Self {
        RefineOptions {
            budget: 0,
            gap_tol: 0.05,
            max_rounds: 32,
            warm_start: Vec::new(),
            objectives: ObjectiveSpace::default(),
            constraints: Vec::new(),
            cancel: None,
            point_mode: PointMode::Full,
        }
    }
}

/// A shared cooperative cancellation flag for in-flight refinements.
///
/// Cloning shares the flag; once [`CancelToken::cancel`] fires, every
/// holder observes it. The refinement drivers consult the token only at
/// **round boundaries** — a fired token stops the run before the next
/// round is planned, so the partial [`RefineResult`] (rows, trace, front)
/// is exactly a prefix-of-rounds of the uncancelled run, never a torn
/// round. The exploration server's `cancel` verb fires these between a
/// client's streamed round events.
///
/// Equality is *identity*: two tokens compare equal when they share one
/// flag (so an options struct holding a token stays `PartialEq` without
/// pretending distinct tokens in identical states are interchangeable).
#[derive(Debug, Clone, Default)]
pub struct CancelToken(std::sync::Arc<std::sync::atomic::AtomicBool>);

impl CancelToken {
    /// A fresh, unfired token.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Fires the token: every pending round-boundary check from now on
    /// sees the cancellation.
    pub fn cancel(&self) {
        self.0.store(true, std::sync::atomic::Ordering::Release);
    }

    /// Whether [`CancelToken::cancel`] has fired.
    #[must_use]
    pub fn is_cancelled(&self) -> bool {
        self.0.load(std::sync::atomic::Ordering::Acquire)
    }
}

impl PartialEq for CancelToken {
    fn eq(&self, other: &Self) -> bool {
        std::sync::Arc::ptr_eq(&self.0, &other.0)
    }
}

/// A parsed warm-start document: the grid cells a previously exported
/// front/sweep names, plus the objective space the export records having
/// produced it (absent in pre-redesign exports and bare row arrays).
///
/// The cells are space-independent — they are grid coordinates, and a
/// warm seed only ever *adds* evaluations — so a front exported under one
/// space safely warm-starts a refinement in any other; the recorded space
/// is surfaced so callers can say so (the CLI logs it).
#[derive(Debug, Clone, PartialEq)]
pub struct WarmStart {
    /// Deduplicated grid cells named by the document's front (or sweep).
    pub cells: Vec<SweepCell>,
    /// The objective space the document was exported under, when recorded.
    pub objectives: Option<ObjectiveSpace>,
    /// The objective constraints the document was exported under (empty
    /// for unconstrained and pre-constraint exports). Like the space,
    /// pure provenance: the cells seed any refinement, constrained or
    /// not.
    pub constraints: Vec<Constraint>,
}

impl WarmStart {
    /// Parses a previously exported sweep/front/refine JSON document (any
    /// of `export::front_to_json_in`, `export::refine_to_json`, or a bare
    /// row array). Rows are matched by their grid names
    /// (`prefix-c<clock>-l<cycles>[-ii<n>]`); rows whose names encode no
    /// grid cell (e.g. the paper's hand-named D1–D15 points) are skipped,
    /// because they cannot be mapped back onto any grid.
    ///
    /// # Errors
    ///
    /// [`Error::Interp`] when `json` is not parseable JSON, has none of
    /// the recognized shapes, or records an invalid `objectives` list.
    pub fn parse(json: &str) -> Result<WarmStart> {
        use adhls_core::json::Value;
        let doc = Value::parse(json)
            .map_err(|e| Error::Interp(format!("warm-start JSON did not parse: {e}")))?;
        // The one shared `objectives`/`constraints` grammar — identical to
        // the wire's request fields, so exported documents and requests
        // cannot drift.
        let objectives = ObjectiveSpace::from_json(doc.get("objectives"))
            .map_err(|e| Error::Interp(format!("warm-start `objectives`: {e}")))?;
        let constraints = constraints_from_json(doc.get("constraints"))
            .map_err(|e| Error::Interp(format!("warm-start `constraints`: {e}")))?;
        // Prefer the front (the useful part of an exported document); fall
        // back to the sweep, then to a bare array.
        let rows = doc
            .get("front")
            .and_then(Value::as_arr)
            .or_else(|| doc.get("sweep").and_then(Value::as_arr))
            .or_else(|| doc.as_arr())
            .ok_or_else(|| Error::Interp("warm-start JSON has no `front`/`sweep` array".into()))?;
        let mut cells = Vec::new();
        for row in rows {
            let Some(name) = row.get("name").and_then(Value::as_str) else {
                continue;
            };
            if let Some((clock_ps, cycles, pipeline_ii)) = DsePoint::parse_grid_name(name) {
                let cell = SweepCell {
                    clock_ps,
                    cycles,
                    pipeline_ii,
                };
                if !cells.contains(&cell) {
                    cells.push(cell);
                }
            }
        }
        Ok(WarmStart {
            cells,
            objectives,
            constraints,
        })
    }
}

/// Extracts just the warm-start cells of an exported document — see
/// [`WarmStart::parse`], which also surfaces the recorded objective space.
///
/// # Errors
///
/// As [`WarmStart::parse`].
pub fn warm_start_cells(json: &str) -> Result<Vec<SweepCell>> {
    Ok(WarmStart::parse(json)?.cells)
}

/// One refinement round's bookkeeping, exported with the sweep so runs are
/// auditable (`export::refine_to_json`).
#[derive(Debug, Clone, PartialEq)]
pub struct RoundTrace {
    /// Round number (`0` is the seed).
    pub round: usize,
    /// Cells submitted for evaluation this round.
    pub new_points: usize,
    /// Front size after integrating the round's rows.
    pub front_size: usize,
    /// The widest normalized staircase gap that triggered this round
    /// (`0.0` for the seed round and for single-point-staircase
    /// densification rounds, where no gap exists yet). Gaps the grid has
    /// no cells for (real discontinuities in the design space) keep this
    /// above the tolerance even at convergence.
    pub max_gap: f64,
    /// Candidate cells pruned by the optimistic-bound test this round.
    pub pruned: usize,
}

/// Outcome of one adaptive refinement.
#[derive(Debug, Clone, PartialEq)]
pub struct RefineResult {
    /// Every evaluated row, in deterministic (round, cell-index) order.
    pub rows: Vec<DseRow>,
    /// Infeasible cells as (name, error), if the evaluator skips them.
    pub skipped: Vec<(String, String)>,
    /// The full four-objective Pareto front over the **feasible** `rows`
    /// — in every objective space, so the reported front never discards
    /// information the steering plane happens to ignore, but never
    /// contains a row that violates [`RefineResult::constraints`]
    /// (unconstrained runs: all rows are feasible). Project it through
    /// [`crate::pareto::pareto_front_in_constrained`] /
    /// [`crate::pareto::tradeoff_staircase_in_constrained`] with
    /// [`RefineResult::objectives`] for the plane the run converged in.
    pub front: Vec<DseRow>,
    /// The objective space that steered this refinement
    /// ([`RefineOptions::objectives`]) — recorded so exports can say which
    /// plane produced the result.
    pub objectives: ObjectiveSpace,
    /// The constraints the refinement honored
    /// ([`RefineOptions::constraints`]) — recorded next to the space, so
    /// exports are self-describing and warm starts can surface the
    /// provenance. Empty = unconstrained.
    pub constraints: Vec<Constraint>,
    /// Per-round refinement metadata, seed first.
    pub trace: Vec<RoundTrace>,
    /// Cells submitted for evaluation (`rows.len() + skipped.len()`).
    pub evaluated: usize,
    /// Cells discarded by the dominance prune without evaluation.
    pub pruned: usize,
    /// Cell count of the exhaustive grid this refinement approximates,
    /// over the deduplicated axes (duplicate axis entries name the same
    /// cells and don't inflate the count).
    pub grid_cells: usize,
    /// Whether a [`CancelToken`] stopped the run at a round boundary
    /// before it converged. When true, `rows` and `trace` are a valid
    /// prefix of the uncancelled run's (cancellation never tears a round).
    pub cancelled: bool,
}

/// A cell as (clock index, cycles index, pipeline-mode index) into the
/// sorted axes.
type Cell = (usize, usize, usize);

struct Driver<'a, F> {
    clocks: Vec<u64>,
    cycles: Vec<u32>,
    modes: Vec<Option<u32>>,
    prefix: &'a str,
    build: F,
    /// Objective bounds shared by every steering plane: the staircase,
    /// the reported front, and the prune's dominator set only ever see
    /// feasible rows, and provably-infeasible cells are never submitted.
    constraints: Vec<Constraint>,
    /// Cells already settled — evaluated, skipped as infeasible, or pruned
    /// — and therefore never to be submitted again.
    known: HashSet<Cell>,
    /// Evaluation mode for every cell this driver submits
    /// ([`RefineOptions::point_mode`]; [`PointMode::Full`] until a driver
    /// entry sets it).
    mode: PointMode,
    rows: Vec<DseRow>,
    row_cells: Vec<Cell>,
    skipped: Vec<(String, String)>,
    pruned: usize,
}

impl<'a, F: FnMut(&SweepCell) -> Design> Driver<'a, F> {
    /// Builds a driver over `grid`'s sorted, deduplicated axes — duplicate
    /// axis entries name the same cells, and index bisection needs sorted
    /// axes. Returns the driver and the deduplicated grid's cell count
    /// (the exhaustive denominator every evaluated/total ratio is judged
    /// against).
    ///
    /// # Errors
    ///
    /// [`Error::Capacity`] when the cell count overflows `usize`.
    fn prepare(
        grid: &SweepGrid,
        prefix: &'a str,
        build: F,
        constraints: &[Constraint],
    ) -> Result<(Driver<'a, F>, usize)> {
        let mut clocks: Vec<u64> = grid.clock_axis().to_vec();
        clocks.sort_unstable();
        clocks.dedup();
        let mut cycles: Vec<u32> = grid.cycles_axis().to_vec();
        cycles.sort_unstable();
        cycles.dedup();
        let mut modes: Vec<Option<u32>> = Vec::new();
        for &m in grid.pipeline_axis() {
            if !modes.contains(&m) {
                modes.push(m);
            }
        }
        let Some(grid_cells) = clocks
            .len()
            .checked_mul(cycles.len())
            .and_then(|p| p.checked_mul(modes.len()))
        else {
            return Err(Error::Capacity(
                "adaptive refinement grid overflows the machine's address space".into(),
            ));
        };
        Ok((
            Driver {
                clocks,
                cycles,
                modes,
                prefix,
                build,
                constraints: constraints.to_vec(),
                known: HashSet::new(),
                mode: PointMode::Full,
                rows: Vec::new(),
                row_cells: Vec::new(),
                skipped: Vec::new(),
                pruned: 0,
            },
            grid_cells,
        ))
    }

    /// The seed cell list: axis corners and midpoints, every pipeline
    /// mode — plus any warm-start cells that map onto this grid (appended
    /// after the geometric seed so a warm start never changes which cells
    /// a cold seed evaluates, only adds to them). Cells that provably
    /// violate a closed-form constraint (an exact latency/throughput
    /// outside its bound) never reach the evaluator — the constrained
    /// run's first saving over sweep-then-filter; they are returned as the
    /// pruned count. `budget` (if nonzero) truncates the list.
    fn seed(&mut self, warm_start: &[SweepCell], budget: usize) -> (Vec<Cell>, usize) {
        let mut seed: Vec<Cell> = Vec::new();
        for &ci in &seed_indices(self.clocks.len()) {
            for &li in &seed_indices(self.cycles.len()) {
                for mi in 0..self.modes.len() {
                    seed.push((ci, li, mi));
                }
            }
        }
        for w in warm_start {
            let found = (
                self.clocks.iter().position(|&c| c == w.clock_ps),
                self.cycles.iter().position(|&c| c == w.cycles),
                self.modes.iter().position(|&m| m == w.pipeline_ii),
            );
            if let (Some(ci), Some(li), Some(mi)) = found {
                let cell = (ci, li, mi);
                if !seed.contains(&cell) {
                    seed.push(cell);
                }
            }
        }
        let mut pruned = 0usize;
        seed.retain(|&cell| {
            if self.provably_infeasible(cell) {
                self.known.insert(cell);
                self.pruned += 1;
                pruned += 1;
                false
            } else {
                true
            }
        });
        if budget > 0 {
            seed.truncate(budget);
        }
        (seed, pruned)
    }

    fn sweep_cell(&self, cell: Cell) -> SweepCell {
        SweepCell {
            clock_ps: self.clocks[cell.0],
            cycles: self.cycles[cell.1],
            pipeline_ii: self.modes[cell.2],
        }
    }

    /// Exact item time of a (possibly unevaluated) cell — closed-form, per
    /// `core::dse`.
    fn cell_item_time_ps(&self, cell: Cell) -> f64 {
        let sc = self.sweep_cell(cell);
        grid_item_time_ps(sc.clock_ps, sc.pipeline_ii.unwrap_or(sc.cycles).max(1))
    }

    /// Submits `cells` (deterministically ordered by the caller) and
    /// integrates rows/skips back into the cell map.
    fn evaluate_cells(&mut self, eval: &dyn Evaluator, cells: &[Cell]) -> Result<()> {
        let points: Vec<DsePoint> = cells
            .iter()
            .map(|&c| {
                let sc = self.sweep_cell(c);
                DsePoint::grid(
                    self.prefix,
                    (self.build)(&sc),
                    sc.clock_ps,
                    sc.cycles,
                    sc.pipeline_ii,
                )
            })
            .collect();
        let result = eval.evaluate_points_mode(&points, self.mode)?;
        let mut row_it = result.rows.into_iter();
        let mut skip_it = result.skipped.into_iter().peekable();
        for (p, &cell) in points.iter().zip(cells) {
            self.known.insert(cell);
            if skip_it.peek().is_some_and(|(n, _)| *n == p.name) {
                let entry = skip_it.next().expect("peeked skip entry");
                self.skipped.push(entry);
            } else {
                let row = row_it.next().expect("a row for every unskipped point");
                self.row_cells.push(cell);
                self.rows.push(row);
            }
        }
        Ok(())
    }

    /// The current front as (row index, cell, objectives), in the
    /// deterministic pareto order (area ascending): the full
    /// four-objective front over the *feasible* rows. Infeasible rows are
    /// excluded from both sides — they can neither be reported nor serve
    /// as prune dominators (a point outside the feasible region must not
    /// veto a cell that could join the constrained front).
    fn front(&self) -> Vec<(usize, Cell, Objectives)> {
        pareto_indices_in_constrained(&ObjectiveSpace::full(), &self.constraints, &self.rows)
            .into_iter()
            .map(|i| (i, self.row_cells[i], objectives(&self.rows[i])))
            .collect()
    }

    /// Every feasible evaluated row as (row index, cell, objectives), in
    /// row order — the candidate pool scalarized descent picks incumbents
    /// from (non-finite rows are excluded like everywhere else).
    fn feasible(&self) -> Vec<(usize, Cell, Objectives)> {
        self.rows
            .iter()
            .enumerate()
            .filter_map(|(i, r)| {
                let o = objectives(r);
                let ok = o.is_finite()
                    && self
                        .constraints
                        .iter()
                        .all(|c| c.satisfied_value(c.axis.value(&o)));
                ok.then_some((i, self.row_cells[i], o))
            })
            .collect()
    }

    /// The **planning** staircase in `space`'s plane: rows non-dominated
    /// when only the plane's two axes count, sorted by the primary axis
    /// improving (area ascending, latency strictly descending under the
    /// default space).
    ///
    /// Gap measurement runs on this projection, not the full
    /// four-objective front: with every axis in play most grid cells are
    /// incomparable, the "front" approaches the whole grid, and
    /// primary-adjacent front points can sit anywhere along the secondary
    /// axis — gaps would never converge and refinement would degenerate
    /// into an exhaustive sweep. The staircase is the two-axis tradeoff
    /// curve the refinement is promised to resolve; the reported front
    /// stays the full four-objective one.
    ///
    /// Planning deliberately walks the **unconstrained** staircase even
    /// under constraints (the *reported* staircase/front are always the
    /// feasible projections): the feasible staircase is truncated at the
    /// constraint boundary, so no gap would ever span the region just
    /// inside it and boundary-adjacent feasible front points would be
    /// systematically missed. Walking the unconstrained curve keeps the
    /// bisection anchored on both sides of the boundary; the savings come
    /// from the cells constraints let the driver *skip* — provably
    /// infeasible closed-form values, optimistic bounds already over a
    /// budget, windows clipped to the feasible interval — not from
    /// blinding the planner. Rows whose closed-form axes violate a bound
    /// are never evaluated in the first place, so those never appear
    /// here either.
    fn staircase(&self, space: &ObjectiveSpace) -> Vec<(usize, Cell, Objectives)> {
        staircase_indices_in(space, &self.rows)
            .into_iter()
            .map(|i| (i, self.row_cells[i], objectives(&self.rows[i])))
            .collect()
    }

    /// True when `cell` provably violates a constraint **without
    /// evaluation**: latency and throughput of a grid cell are closed-form
    /// ([`Driver::exact_cell_value`]), so a bound on either axis can be
    /// checked before any HLS run. Area/power bounds have no exact check
    /// here; the optimistic-bound test in [`Driver::provably_useless`]
    /// covers their interior-cell case.
    fn provably_infeasible(&self, cell: Cell) -> bool {
        self.constraints.iter().any(|c| {
            self.exact_cell_value(cell, c.axis)
                .is_some_and(|v| !c.satisfied_value(v))
        })
    }

    /// The exact, closed-form value of a (possibly unevaluated) grid cell
    /// on `axis`, when the axis has one: latency and throughput are pure
    /// functions of the cell's coordinates; area and power need an HLS
    /// run.
    fn exact_cell_value(&self, cell: Cell, axis: Objective) -> Option<f64> {
        match axis {
            Objective::LatencyPs => Some(self.cell_item_time_ps(cell)),
            Objective::Throughput => Some(1.0e6 / self.cell_item_time_ps(cell)),
            Objective::Area | Objective::PowerTotal => None,
        }
    }

    /// Plans one refinement round: the widest normalized gap, the
    /// candidate cells worth evaluating (sorted by cell index), and how
    /// many candidates the optimistic-bound prune discarded.
    ///
    /// Each wide staircase gap proposes, in escalation order (a gap only
    /// spends cells from the cheapest family that still has fresh ones),
    /// three candidate families:
    ///
    /// * **midpoints** of the endpoints' index rectangle (both roundings —
    ///   with floor-only, index-adjacent endpoints collapse onto an
    ///   endpoint and refinement stalls with the gap still wide),
    /// * the rectangle's **cross corners** `(ca.clock, cb.cycles)` /
    ///   `(cb.clock, ca.cycles)` — for index-adjacent pairs the midpoints
    ///   degenerate and the corners are the only interior structure left,
    /// * the **axis neighbors** (±1 per axis) of both endpoints — gaps
    ///   whose dominating cells sit just outside the endpoints' rectangle
    ///   (a front point produced by a dominated seed neighborhood) are
    ///   reachable by no bisection; densifying around the gap's endpoints
    ///   is what lets the front converge to the exhaustive one.
    ///
    /// Only interior midpoints are eligible for the optimistic-bound prune:
    /// the monotone-interpolation bound brackets cells *between* the two
    /// evaluated endpoints, not corners or outward neighbors.
    ///
    /// `pending` carries the cells already queued *this round* — by this
    /// plane's earlier gaps, and (under [`refine_multi`]) by other planes'
    /// plans — so an already-queued cell counts as a gap's contribution
    /// instead of escalating to costlier families, and no cell is ever
    /// queued twice in one round.
    ///
    /// `full_front` is the current [`Driver::front`] — the dominators for
    /// the optimistic-bound prune (staircase neighbors can never dominate
    /// an interior cell's optimistic corner, but a front point better on
    /// an axis outside the plane can). The caller extracts it once per
    /// *round*: rows don't change while a round plans, and under
    /// [`refine_multi`] every plane's plan shares the same extraction.
    fn plan(
        &mut self,
        space: &ObjectiveSpace,
        stairs: &[(usize, Cell, Objectives)],
        gap_tol: f64,
        pending: &mut HashSet<Cell>,
        full_front: &[(usize, Cell, Objectives)],
    ) -> (f64, Vec<Cell>, usize) {
        let ranges = space.plane_ranges(stairs.iter().map(|(_, _, o)| o));
        let (primary, secondary) = space.plane();
        // The plane axes with closed-form cell values (latency/throughput),
        // paired with their normalization range: these are the axes gap
        // windows can be checked on without evaluation. An area/power
        // plane has none, and windowing simply admits every candidate.
        // (The two plane axes are distinct by construction: spaces reject
        // duplicates and refinement rejects single-axis spaces.)
        let exact_axes: Vec<(Objective, f64)> = [(primary, ranges.0), (secondary, ranges.1)]
            .into_iter()
            .filter(|(a, _)| matches!(a, Objective::LatencyPs | Objective::Throughput))
            .collect();
        let mut max_gap = 0.0f64;
        let mut candidates: Vec<Cell> = Vec::new();
        let mut pruned_now = 0usize;
        for pair in stairs.windows(2) {
            let (_, ca, oa) = pair[0];
            let (_, cb, ob) = pair[1];
            let gap = space.plane_gap(&oa, &ob, ranges);
            max_gap = max_gap.max(gap);
            if gap <= gap_tol {
                continue;
            }
            // The pipeline axis is categorical: no midpoint, try both
            // endpoints' modes at every proposed (clock, cycles).
            let modes = if ca.2 == cb.2 {
                vec![ca.2]
            } else {
                vec![ca.2, cb.2]
            };
            let (lo_c, hi_c) = (ca.0.min(cb.0), ca.0.max(cb.0));
            let (lo_l, hi_l) = (ca.1.min(cb.1), ca.1.max(cb.1));
            // Candidate families in escalation order; a gap only spends
            // cells from the cheapest family that still has fresh ones.
            let mids: Vec<(Cell, bool)> = modes
                .iter()
                .flat_map(|&mode| {
                    [midpoint(lo_c, hi_c), midpoint_up(lo_c, hi_c)]
                        .into_iter()
                        .flat_map(move |mc| {
                            [midpoint(lo_l, hi_l), midpoint_up(lo_l, hi_l)]
                                .into_iter()
                                .map(move |ml| ((mc, ml, mode), true))
                        })
                })
                .collect();
            let corners: Vec<(Cell, bool)> = modes
                .iter()
                .flat_map(|&mode| [((ca.0, cb.1, mode), false), ((cb.0, ca.1, mode), false)])
                .collect();
            let neighbors: Vec<(Cell, bool)> = modes
                .iter()
                .flat_map(|&mode| {
                    [ca, cb].into_iter().flat_map(move |(c, l, _)| {
                        [
                            (c.wrapping_sub(1), l),
                            (c + 1, l),
                            (c, l.wrapping_sub(1)),
                            (c, l + 1),
                        ]
                        .into_iter()
                        .map(move |(nc, nl)| ((nc, nl, mode), false))
                    })
                })
                .collect();
            // A candidate can only resolve *this* gap if its exact,
            // closed-form value on each exact plane axis lands inside the
            // gap's interval on that axis (± the tolerance): anything
            // outside belongs to another pair's territory and would be
            // proposed there if useful. Constraints on an exact axis clip
            // the window to the feasible interval — the gap's territory
            // never extends past a bound, because the staircase the gap
            // lives on only contains feasible points.
            let windows: Vec<(Objective, f64, f64)> = exact_axes
                .iter()
                .map(|&(axis, range)| {
                    let (va, vb) = (axis.value(&oa), axis.value(&ob));
                    let tol = gap_tol.max(0.05) * range;
                    let (mut lo, mut hi) = (va.min(vb) - tol, va.max(vb) + tol);
                    for c in &self.constraints {
                        if c.axis == axis {
                            match c.op {
                                crate::constraint::ConstraintOp::Le => hi = hi.min(c.bound),
                                crate::constraint::ConstraintOp::Ge => lo = lo.max(c.bound),
                            }
                        }
                    }
                    (axis, lo, hi)
                })
                .collect();
            for family in [mids, corners, neighbors] {
                let mut contributed = false;
                for (cell, prunable) in family {
                    if cell == ca
                        || cell == cb
                        || cell.0 >= self.clocks.len()
                        || cell.1 >= self.cycles.len()
                        || self.known.contains(&cell)
                    {
                        continue;
                    }
                    // A cell another gap already queued this round counts
                    // as this gap's contribution too — escalating past it
                    // would submit costlier families for a gap that is
                    // already being refined.
                    if pending.contains(&cell) {
                        contributed = true;
                        continue;
                    }
                    // A bound on a closed-form axis (latency/throughput)
                    // disqualifies a cell for good, whichever gap or plane
                    // proposes it — no evaluation needed.
                    if self.provably_infeasible(cell) {
                        self.known.insert(cell);
                        self.pruned += 1;
                        pruned_now += 1;
                        continue;
                    }
                    let outside = windows.iter().any(|&(axis, lo, hi)| {
                        let v = self
                            .exact_cell_value(cell, axis)
                            .expect("windowed axes are closed-form");
                        v < lo || v > hi
                    });
                    if outside {
                        continue;
                    }
                    if prunable && self.provably_useless(cell, &oa, &ob, full_front) {
                        self.known.insert(cell);
                        self.pruned += 1;
                        pruned_now += 1;
                        continue;
                    }
                    candidates.push(cell);
                    pending.insert(cell);
                    contributed = true;
                }
                if contributed {
                    break;
                }
            }
        }
        candidates.sort_unstable();
        (max_gap, candidates, pruned_now)
    }

    /// Proposes the axis neighborhood (±1 per numeric axis, every pipeline
    /// mode, including the cell's own coordinates under other modes) of
    /// each staircase point, skipping cells a closed-form constraint
    /// already disqualifies (returned as the pruned count).
    ///
    /// This is the escape hatch for planes whose staircase collapses to a
    /// single point: when both plane axes are evaluated quantities
    /// (area/power) and strongly correlated, the seed's non-dominated set
    /// can be one corner cell even though the true plane front holds
    /// more — and with no gap to bisect, the only signal left is local
    /// densification around that argmin corner. Known cells are never
    /// re-proposed, so the walk terminates once the neighborhood (or the
    /// grid) is exhausted. The caller only takes this path for planes
    /// without a closed-form axis: a latency-bearing plane's seed corners
    /// already span the exact axis, and its one-point staircase keeps the
    /// pre-redesign early stop instead (default-space bit-identity).
    fn plan_densify(&mut self, stairs: &[(usize, Cell, Objectives)]) -> (Vec<Cell>, usize) {
        let mut out: Vec<Cell> = Vec::new();
        let mut pruned_now = 0usize;
        for &(_, (c, l, _), _) in stairs {
            for mi in 0..self.modes.len() {
                let neighborhood = [
                    (c.wrapping_sub(1), l),
                    (c + 1, l),
                    (c, l.wrapping_sub(1)),
                    (c, l + 1),
                    (c, l),
                ];
                for (nc, nl) in neighborhood {
                    let cell = (nc, nl, mi);
                    if nc < self.clocks.len()
                        && nl < self.cycles.len()
                        && !self.known.contains(&cell)
                        && !out.contains(&cell)
                    {
                        if self.provably_infeasible(cell) {
                            self.known.insert(cell);
                            self.pruned += 1;
                            pruned_now += 1;
                            continue;
                        }
                        out.push(cell);
                    }
                }
            }
        }
        out.sort_unstable();
        (out, pruned_now)
    }

    /// The optimistic-bound prune: latency/throughput of a grid cell are
    /// exact without evaluation, and area/power are bounded below by the
    /// better of the two bracketing front points (monotone-interpolation
    /// bound — scheduling with a budget between two evaluated budgets does
    /// not beat both on area/power). If even that corner is dominated by a
    /// feasible front point — or already violates a `<=` budget on
    /// area/power, which its real evaluation can only exceed — evaluating
    /// the cell cannot change the (constrained) front.
    ///
    /// The dominance check deliberately runs in the **full**
    /// four-objective space whatever plane steers the run: full-space
    /// dominance implies the dominator is no worse on *every* axis, so a
    /// pruned cell can neither join the reported four-objective front nor
    /// strictly improve any plane's staircase — sound in every
    /// [`ObjectiveSpace`], and under [`refine_multi`] sound for every
    /// plane sharing the pass. (Pruning in-plane would discard cells that
    /// win on an unselected axis, and would make the default space diverge
    /// from the pre-redesign behavior.) The infeasibility check is
    /// restricted to `<=` bounds because the monotone-interpolation bound
    /// is a *lower* bound: it can prove a budget will be exceeded, never
    /// that a floor will be met.
    fn provably_useless(
        &self,
        cell: Cell,
        oa: &Objectives,
        ob: &Objectives,
        front: &[(usize, Cell, Objectives)],
    ) -> bool {
        use crate::constraint::ConstraintOp;
        let item_time = self.cell_item_time_ps(cell);
        let optimistic = Objectives {
            area: oa.area.min(ob.area),
            latency_ps: item_time,
            power: oa.power.min(ob.power),
            throughput: 1.0e6 / item_time,
        };
        if !optimistic.is_finite() {
            return false;
        }
        let over_budget = self.constraints.iter().any(|c| {
            matches!(c.axis, Objective::Area | Objective::PowerTotal)
                && c.op == ConstraintOp::Le
                && !c.satisfied_value(c.axis.value(&optimistic))
        });
        over_budget || front.iter().any(|(_, _, of)| dominates(of, &optimistic))
    }
}

/// True when the space's steering plane has a closed-form axis
/// (latency/throughput): such a plane's seed corners already span that
/// axis, so a single-point staircase is a genuinely converged corner and
/// densification is never needed (see [`Driver::plan_densify`]).
fn plane_has_exact_axis(space: &ObjectiveSpace) -> bool {
    let (p, s) = space.plane();
    [p, s]
        .iter()
        .any(|a| matches!(a, Objective::LatencyPs | Objective::Throughput))
}

/// Overflow-free index midpoint, rounding down.
fn midpoint(a: usize, b: usize) -> usize {
    a.min(b) + (a.max(b) - a.min(b)) / 2
}

/// Overflow-free index midpoint, rounding up.
fn midpoint_up(a: usize, b: usize) -> usize {
    a.min(b) + (a.max(b) - a.min(b)).div_ceil(2)
}

/// The effective gap tolerance: non-finite or negative values are treated
/// as `0.0` (refine until nothing new appears), on every driver.
fn clamp_gap_tol(t: f64) -> f64 {
    if t.is_finite() && t >= 0.0 {
        t
    } else {
        0.0
    }
}

/// Seed indices for one axis: first, middle, last (deduped).
fn seed_indices(len: usize) -> Vec<usize> {
    let mut idx = vec![0, len / 2, len.saturating_sub(1)];
    idx.sort_unstable();
    idx.dedup();
    idx.retain(|&i| i < len);
    idx
}

/// Adaptively refines the Pareto front of `grid` (see the module docs for
/// the algorithm). Every evaluated cell is a cell of `grid`, so the result
/// front is a subset of the exhaustive sweep's rows, reached with —
/// typically far — fewer evaluations.
///
/// # Errors
///
/// [`Error::Capacity`] when the grid's cell count overflows `usize`;
/// otherwise propagates the evaluator's scheduling failures (use a
/// skip-infeasible evaluator to explore grids with infeasible corners).
pub fn refine<F>(
    eval: &dyn Evaluator,
    grid: &SweepGrid,
    prefix: &str,
    build: F,
    opts: &RefineOptions,
) -> Result<RefineResult>
where
    F: FnMut(&SweepCell) -> Design,
{
    refine_with_progress(eval, grid, prefix, build, opts, |_| {})
}

/// [`refine`], reporting each round's [`RoundTrace`] to `observe` as soon
/// as the round's rows are integrated (the seed round included). This is
/// the hook the exploration server streams per-round progress events from;
/// the trace passed to `observe` is exactly the entry that ends up in
/// [`RefineResult::trace`].
///
/// # Errors
///
/// As [`refine`].
pub fn refine_with_progress<F>(
    eval: &dyn Evaluator,
    grid: &SweepGrid,
    prefix: &str,
    build: F,
    opts: &RefineOptions,
    mut observe: impl FnMut(&RoundTrace),
) -> Result<RefineResult>
where
    F: FnMut(&SweepCell) -> Design,
{
    // Refinement steers a two-axis plane: with fewer axes there is no
    // staircase and no gap, so every round would take the densification
    // path with `gap_tol` never consulted — an unbounded hill walk dressed
    // up as convergence. Reject up front, on every surface (library, CLI,
    // wire all arrive here).
    if opts.objectives.axes().len() < 2 {
        return Err(Error::Interp(format!(
            "adaptive refinement steers a two-axis objective plane; `{}` has only one axis \
             (pick two, e.g. `area,power`)",
            opts.objectives
        )));
    }
    // Constraints must bound axes the active space selects — a bound on an
    // ignored axis would filter rows on evidence the space never weighs.
    validate_constraints(&opts.constraints, opts.objectives.axes()).map_err(Error::Interp)?;
    let gap_tol = clamp_gap_tol(opts.gap_tol);
    let (mut driver, grid_cells) = Driver::prepare(grid, prefix, build, &opts.constraints)?;
    driver.mode = opts.point_mode;
    if driver.clocks.is_empty() || driver.cycles.is_empty() || driver.modes.is_empty() {
        return Ok(RefineResult {
            rows: Vec::new(),
            skipped: Vec::new(),
            front: Vec::new(),
            objectives: opts.objectives.clone(),
            constraints: opts.constraints.clone(),
            trace: Vec::new(),
            evaluated: 0,
            pruned: 0,
            grid_cells,
            cancelled: false,
        });
    }

    // Round timing lands in a per-plane histogram (`refine.round.<plane>`)
    // on the current telemetry registry; the counters tally work done vs
    // avoided. One histogram sample per evaluated round, seed included, so
    // the sample count equals `trace.len()`. Observational only: traces
    // and rows are bit-identical with telemetry on or off.
    let round_metric = format!("refine.round.{}", opts.objectives.names().join("_"));
    let (seed, seed_pruned) = driver.seed(&opts.warm_start, opts.budget);
    adhls_telemetry::timed(&round_metric, || driver.evaluate_cells(eval, &seed))?;
    adhls_telemetry::counter_add("refine.cells_evaluated", seed.len() as u64);
    adhls_telemetry::counter_add("refine.cells_pruned", seed_pruned as u64);
    let mut trace = vec![RoundTrace {
        round: 0,
        new_points: seed.len(),
        front_size: driver.front().len(),
        max_gap: 0.0,
        pruned: seed_pruned,
    }];
    observe(&trace[0]);

    let mut cancelled = false;
    for round in 1..=opts.max_rounds {
        // The round boundary is the one cancellation point: rows and trace
        // integrated so far are a valid prefix of the uncancelled run.
        if opts.cancel.as_ref().is_some_and(CancelToken::is_cancelled) {
            cancelled = true;
            adhls_telemetry::counter_add("refine.cancelled", 1);
            break;
        }
        let stairs = driver.staircase(&opts.objectives);
        if stairs.is_empty() {
            break;
        }
        let (max_gap, mut candidates, pruned_now) = if stairs.len() < 2 {
            // A single-point staircase has no gap to bisect. For planes
            // with a closed-form axis (latency/throughput) the seed's
            // corner cells already span that axis, so a one-point
            // staircase is a genuinely converged corner — stop, exactly
            // as the pre-redesign driver did (this keeps the default
            // (area, latency) plane bit-identical to it). Planes whose
            // axes are both evaluated quantities get no such guarantee;
            // densify the lone point's axis neighborhood instead (see
            // `plan_densify`). The gap is reported as 0.0, like the seed
            // round: there is none yet.
            if plane_has_exact_axis(&opts.objectives) {
                break;
            }
            let (candidates, pruned_now) = driver.plan_densify(&stairs);
            if candidates.is_empty() {
                break;
            }
            (0.0, candidates, pruned_now)
        } else {
            let full_front = driver.front();
            let planned = driver.plan(
                &opts.objectives,
                &stairs,
                gap_tol,
                &mut HashSet::new(),
                &full_front,
            );
            if planned.0 <= gap_tol || planned.1.is_empty() {
                break;
            }
            planned
        };
        if opts.budget > 0 {
            let spent = driver.rows.len() + driver.skipped.len();
            let remaining = opts.budget.saturating_sub(spent);
            if remaining == 0 {
                break;
            }
            candidates.truncate(remaining);
        }
        adhls_telemetry::timed(&round_metric, || driver.evaluate_cells(eval, &candidates))?;
        adhls_telemetry::counter_add("refine.cells_evaluated", candidates.len() as u64);
        adhls_telemetry::counter_add("refine.cells_pruned", pruned_now as u64);
        trace.push(RoundTrace {
            round,
            new_points: candidates.len(),
            front_size: driver.front().len(),
            max_gap,
            pruned: pruned_now,
        });
        observe(trace.last().expect("round trace just pushed"));
    }

    let front = driver
        .front()
        .into_iter()
        .map(|(i, _, _)| driver.rows[i].clone())
        .collect();
    let evaluated = driver.rows.len() + driver.skipped.len();
    Ok(RefineResult {
        rows: driver.rows,
        skipped: driver.skipped,
        front,
        objectives: opts.objectives.clone(),
        constraints: opts.constraints.clone(),
        trace,
        evaluated,
        pruned: driver.pruned,
        grid_cells,
        cancelled,
    })
}

/// Tuning knobs for [`descend`] — the scalarized weighted-sum /
/// ε-constraint ladder (see [`descend`] for the algorithm).
#[derive(Debug, Clone, PartialEq)]
pub struct DescentOptions {
    /// Number of ε-constraint rungs the secondary axis's observed feasible
    /// range is split into (clamped to at least 1; duplicate bounds on a
    /// collapsed range are merged). Each rung runs one warm
    /// single-objective solve.
    pub rungs: usize,
    /// Maximum number of grid cells to evaluate, seed included
    /// (`0` = no budget).
    pub budget: usize,
    /// Safety valve on hill-climb moves per rung.
    pub max_moves: usize,
    /// Weight of the normalized secondary axis in the scalarized value.
    /// `0.0` is the pure ε-constraint method (each solve minimizes the
    /// primary axis alone); a positive weight blends the weighted-sum
    /// method in, steering each solve toward cells that also improve the
    /// secondary axis within the rung's bound.
    pub weight: f64,
    /// The objective plane: each solve optimizes the first axis (in its
    /// natural sense), the second carries the ε-constraint ladder.
    /// Defaults to the paper's (area, latency) tradeoff.
    pub objectives: ObjectiveSpace,
    /// Objective bounds restricting the descent to the feasible region,
    /// exactly as in [`RefineOptions::constraints`].
    pub constraints: Vec<Constraint>,
}

impl Default for DescentOptions {
    fn default() -> Self {
        DescentOptions {
            rungs: 6,
            budget: 0,
            max_moves: 16,
            weight: 0.25,
            objectives: ObjectiveSpace::default(),
            constraints: Vec::new(),
        }
    }
}

/// One rung of a scalarized descent: its secondary-axis bound and what the
/// solve did under it.
#[derive(Debug, Clone, PartialEq)]
pub struct DescentRungTrace {
    /// Rung number (`0` is the loosest bound).
    pub rung: usize,
    /// The rung's bound on the secondary axis, in that axis's own units:
    /// an upper bound for minimized axes (area/latency/power), a lower
    /// bound for throughput.
    pub bound: f64,
    /// Cells evaluated during this rung's solve.
    pub new_points: usize,
    /// Hill-climb moves the solve accepted.
    pub moves: usize,
    /// Name of the rung's final incumbent row (`None` when no evaluated
    /// cell satisfies the bound).
    pub best: Option<String>,
}

/// Outcome of one scalarized descent ([`descend`]).
#[derive(Debug, Clone, PartialEq)]
pub struct DescentResult {
    /// Every evaluated row, in deterministic (batch, cell-index) order.
    pub rows: Vec<DseRow>,
    /// Infeasible cells as (name, error), if the evaluator skips them.
    pub skipped: Vec<(String, String)>,
    /// The full four-objective Pareto front over the feasible `rows`,
    /// exactly as [`RefineResult::front`] reports it.
    pub front: Vec<DseRow>,
    /// The objective plane that steered the descent
    /// ([`DescentOptions::objectives`]).
    pub objectives: ObjectiveSpace,
    /// The constraints the descent honored
    /// ([`DescentOptions::constraints`]).
    pub constraints: Vec<Constraint>,
    /// Per-rung metadata, loosest bound first.
    pub trace: Vec<DescentRungTrace>,
    /// Cells submitted for evaluation (`rows.len() + skipped.len()`).
    pub evaluated: usize,
    /// Cells discarded by closed-form constraint checks without
    /// evaluation.
    pub pruned: usize,
    /// Cell count of the exhaustive grid this descent samples.
    pub grid_cells: usize,
}

/// The best feasible evaluated row under a rung's bound: minimal
/// scalarized value, ties broken toward the lower cell index (both are
/// deterministic, so the incumbent is too).
fn best_under(
    feas: &[(usize, Cell, Objectives)],
    secondary: Objective,
    eps_key: f64,
    scalar: &dyn Fn(&Objectives) -> f64,
) -> Option<(usize, Cell, Objectives)> {
    feas.iter()
        .filter(|(_, _, o)| secondary.key(o) <= eps_key)
        .min_by(|a, b| scalar(&a.2).total_cmp(&scalar(&b.2)).then(a.1.cmp(&b.1)))
        .copied()
}

/// Scalarized descent over `grid`: a weighted-sum / ε-constraint ladder
/// that turns a plane sweep into a sequence of warm single-objective
/// solves.
///
/// Where [`refine`] bisects staircase gaps toward the whole tradeoff
/// curve, `descend` answers a narrower question — "the best primary-axis
/// cell at each of N secondary-axis budgets" — with correspondingly fewer
/// evaluations:
///
/// 1. evaluate the geometric seed (axis corners and midpoints, every
///    pipeline mode),
/// 2. split the secondary axis's observed feasible range into
///    [`DescentOptions::rungs`] ε bounds, loosest first,
/// 3. for each rung, hill-climb from the best already-evaluated feasible
///    cell under that bound: evaluate the incumbent's axis neighborhood,
///    move while the scalarized value (normalized primary plus
///    [`DescentOptions::weight`] × normalized secondary) strictly
///    improves, stop when it doesn't. Neighbors whose closed-form
///    secondary value (latency/throughput planes) already violates the
///    rung's bound are skipped without evaluation.
///
/// Every evaluated cell is a cell of `grid`, so the evaluator's memo
/// cache — and, through it, the engine/pool prefix cache — makes
/// successive rungs warm: later (tighter) rungs re-walk earlier rungs'
/// neighborhoods for free, and each genuine miss reuses the design's
/// retained [`adhls_core::PreparedDesign`] prefix instead of
/// re-elaborating.
///
/// Deterministic: rung bounds derive from evaluated rows, candidate
/// batches are sorted by cell index, and incumbent ties break toward the
/// lower cell index — two descents of the same grid produce the same
/// rows, front, and trace.
///
/// # Errors
///
/// [`Error::Interp`] for a single-axis plane or a constraint on an axis
/// outside it; [`Error::Capacity`] when the grid overflows `usize`;
/// otherwise propagates the evaluator's scheduling failures.
pub fn descend<F>(
    eval: &dyn Evaluator,
    grid: &SweepGrid,
    prefix: &str,
    build: F,
    opts: &DescentOptions,
) -> Result<DescentResult>
where
    F: FnMut(&SweepCell) -> Design,
{
    if opts.objectives.axes().len() < 2 {
        return Err(Error::Interp(format!(
            "scalarized descent needs a two-axis objective plane; `{}` has only one axis \
             (pick two, e.g. `area,latency`)",
            opts.objectives
        )));
    }
    validate_constraints(&opts.constraints, opts.objectives.axes()).map_err(Error::Interp)?;
    let (mut driver, grid_cells) = Driver::prepare(grid, prefix, build, &opts.constraints)?;
    let mut trace: Vec<DescentRungTrace> = Vec::new();
    if driver.clocks.is_empty() || driver.cycles.is_empty() || driver.modes.is_empty() {
        return Ok(DescentResult {
            rows: Vec::new(),
            skipped: Vec::new(),
            front: Vec::new(),
            objectives: opts.objectives.clone(),
            constraints: opts.constraints.clone(),
            trace,
            evaluated: 0,
            pruned: 0,
            grid_cells,
        });
    }
    let metric = format!("descent.rung.{}", opts.objectives.names().join("_"));
    let (seed, seed_pruned) = driver.seed(&[], opts.budget);
    adhls_telemetry::timed(&metric, || driver.evaluate_cells(eval, &seed))?;
    adhls_telemetry::counter_add("refine.cells_evaluated", seed.len() as u64);
    adhls_telemetry::counter_add("refine.cells_pruned", seed_pruned as u64);

    let (primary, secondary) = opts.objectives.plane();
    let feas = driver.feasible();
    // Normalization is fixed once, over the seed's feasible bounding box:
    // re-normalizing mid-climb would let a new extreme point reorder
    // already-compared cells and break the monotone-improvement argument.
    let ranges = opts.objectives.plane_ranges(feas.iter().map(|(_, _, o)| o));
    let scalar =
        move |o: &Objectives| primary.key(o) / ranges.0 + opts.weight * secondary.key(o) / ranges.1;
    // The ladder lives on the secondary *key* (sense-mapped so smaller is
    // always better): loosest bound first, tightening linearly to the best
    // observed value, duplicates merged.
    let (mut kmin, mut kmax) = (f64::INFINITY, f64::NEG_INFINITY);
    for (_, _, o) in &feas {
        kmin = kmin.min(secondary.key(o));
        kmax = kmax.max(secondary.key(o));
    }
    let mut ladder: Vec<f64> = Vec::new();
    if kmin.is_finite() && kmax.is_finite() {
        let rungs = opts.rungs.max(1);
        for r in 0..rungs {
            #[allow(clippy::cast_precision_loss)]
            let t = if rungs == 1 {
                0.0
            } else {
                r as f64 / (rungs - 1) as f64
            };
            let eps = kmax + (kmin - kmax) * t;
            if ladder.last() != Some(&eps) {
                ladder.push(eps);
            }
        }
    }

    for (rung, &eps) in ladder.iter().enumerate() {
        let mut moves = 0usize;
        let mut new_points = 0usize;
        let mut cur = best_under(&driver.feasible(), secondary, eps, &scalar);
        while let Some((_, cell, obj)) = cur {
            if moves >= opts.max_moves {
                break;
            }
            let (mut cands, _) = driver.plan_densify(&[(0, cell, obj)]);
            // A closed-form secondary axis (latency/throughput) prices
            // neighbors without evaluation: outside the rung's bound they
            // cannot become this rung's incumbent — a tighter rung's, at
            // most, and that rung will re-propose them.
            if matches!(secondary, Objective::LatencyPs | Objective::Throughput) {
                cands.retain(|&c| {
                    let v = driver
                        .exact_cell_value(c, secondary)
                        .expect("closed-form axes price without evaluation");
                    let key = match secondary.sense() {
                        Sense::Minimize => v,
                        Sense::Maximize => -v,
                    };
                    key <= eps
                });
            }
            if opts.budget > 0 {
                let spent = driver.rows.len() + driver.skipped.len();
                cands.truncate(opts.budget.saturating_sub(spent));
            }
            if cands.is_empty() {
                break;
            }
            adhls_telemetry::timed(&metric, || driver.evaluate_cells(eval, &cands))?;
            adhls_telemetry::counter_add("refine.cells_evaluated", cands.len() as u64);
            new_points += cands.len();
            match best_under(&driver.feasible(), secondary, eps, &scalar) {
                Some(next) if scalar(&next.2) < scalar(&obj) => {
                    cur = Some(next);
                    moves += 1;
                }
                _ => break,
            }
        }
        let bound = match secondary.sense() {
            Sense::Minimize => eps,
            Sense::Maximize => -eps,
        };
        trace.push(DescentRungTrace {
            rung,
            bound,
            new_points,
            moves,
            best: cur.map(|(i, _, _)| driver.rows[i].name.clone()),
        });
        if opts.budget > 0 && driver.rows.len() + driver.skipped.len() >= opts.budget {
            break;
        }
    }

    let front = driver
        .front()
        .into_iter()
        .map(|(i, _, _)| driver.rows[i].clone())
        .collect();
    let evaluated = driver.rows.len() + driver.skipped.len();
    Ok(DescentResult {
        rows: driver.rows,
        skipped: driver.skipped,
        front,
        objectives: opts.objectives.clone(),
        constraints: opts.constraints.clone(),
        trace,
        evaluated,
        pruned: driver.pruned,
        grid_cells,
    })
}

/// One merged round of a multi-plane refinement ([`refine_multi`]): what
/// the pass evaluated, and where every plane stood.
#[derive(Debug, Clone, PartialEq)]
pub struct MultiRoundTrace {
    /// Round number (`0` is the shared seed).
    pub round: usize,
    /// Cells evaluated this round — every plane's proposals, merged and
    /// deduplicated (a cell two planes want is evaluated once).
    pub new_points: usize,
    /// Size of the feasible full-objective front after integrating the
    /// round's rows.
    pub front_size: usize,
    /// Each plane's widest normalized staircase gap this round,
    /// index-aligned with the `planes` passed to [`refine_multi`]
    /// (`0.0` for the seed round and for planes with no gap yet).
    pub plane_gaps: Vec<f64>,
    /// Cells discarded without evaluation this round (optimistic-bound
    /// prunes and provable constraint violations), all planes combined.
    pub pruned: usize,
}

/// Outcome of one multi-plane refinement ([`refine_multi`]): per-plane
/// [`RefineResult`]s over one shared evaluation set, plus the merged
/// trace.
#[derive(Debug, Clone, PartialEq)]
pub struct MultiRefineResult {
    /// One result per requested plane, in request order. All of them share
    /// the pass's `rows`/`skipped`/`front` (the evaluations were shared);
    /// each records its own `objectives` and a per-plane trace whose
    /// `max_gap` is that plane's gap and whose `new_points` counts the
    /// cells that plane proposed (a shared cell is credited to the first
    /// plane that asked for it).
    pub planes: Vec<RefineResult>,
    /// The merged per-round trace, seed first.
    pub trace: Vec<MultiRoundTrace>,
    /// Every evaluated row, in deterministic (round, cell-index) order —
    /// the union the planes steered together.
    pub rows: Vec<DseRow>,
    /// Infeasible cells as (name, error), if the evaluator skips them.
    pub skipped: Vec<(String, String)>,
    /// The full four-objective Pareto front over the feasible `rows` (see
    /// [`RefineResult::front`]) — identical in every plane's result.
    pub front: Vec<DseRow>,
    /// The constraints the pass honored (shared by every plane).
    pub constraints: Vec<Constraint>,
    /// Cells submitted for evaluation (`rows.len() + skipped.len()`) —
    /// each exactly once, however many planes wanted it.
    pub evaluated: usize,
    /// Cells discarded without evaluation, all planes combined.
    pub pruned: usize,
    /// Cell count of the deduplicated exhaustive grid.
    pub grid_cells: usize,
    /// Whether a [`CancelToken`] stopped the pass at a round boundary (see
    /// [`RefineResult::cancelled`]; mirrored into every plane's result).
    pub cancelled: bool,
}

/// Refines **several objective planes in one pass** over one shared
/// evaluator: every plane's staircase gaps are measured and bisected each
/// round, the proposed cells are merged (deduplicated) into one batch, and
/// every evaluation feeds every plane — so exploring `[area,latency]` and
/// `[area,power]` together performs no duplicate HLS evaluations, where
/// two single-plane runs would re-derive the shared neighborhoods (or pay
/// cache lookups for them).
///
/// `opts.objectives` is ignored; the planes come from `planes` (each needs
/// two axes, duplicates are rejected). Constraints apply to the whole
/// pass and must bound axes selected by at least one plane. Budget,
/// tolerance, warm start, and round cap are shared.
///
/// Convergence matches the single-plane driver per plane: a plane stops
/// proposing once its gaps are within tolerance (or its candidate
/// families are exhausted), and the pass ends when no plane proposes
/// anything new. Because every plane also sees the rows the *other*
/// planes requested, each plane's final staircase is at least as resolved
/// as its single-plane run's.
///
/// # Errors
///
/// As [`refine`], plus a message when `planes` is empty or repeats a
/// plane.
pub fn refine_multi<F>(
    eval: &dyn Evaluator,
    grid: &SweepGrid,
    prefix: &str,
    build: F,
    opts: &RefineOptions,
    planes: &[ObjectiveSpace],
) -> Result<MultiRefineResult>
where
    F: FnMut(&SweepCell) -> Design,
{
    refine_multi_with_progress(eval, grid, prefix, build, opts, planes, |_| {})
}

/// [`refine_multi`], reporting each merged round's [`MultiRoundTrace`] to
/// `observe` as soon as the round's rows are integrated (the seed round
/// included) — the multi-plane counterpart of [`refine_with_progress`],
/// and what the exploration server streams multi-plane `round` events
/// from.
///
/// # Errors
///
/// As [`refine_multi`].
pub fn refine_multi_with_progress<F>(
    eval: &dyn Evaluator,
    grid: &SweepGrid,
    prefix: &str,
    build: F,
    opts: &RefineOptions,
    planes: &[ObjectiveSpace],
    mut observe: impl FnMut(&MultiRoundTrace),
) -> Result<MultiRefineResult>
where
    F: FnMut(&SweepCell) -> Design,
{
    if planes.is_empty() {
        return Err(Error::Interp(
            "multi-plane refinement needs at least one objective plane".into(),
        ));
    }
    for p in planes {
        if p.axes().len() < 2 {
            return Err(Error::Interp(format!(
                "adaptive refinement steers a two-axis objective plane; `{p}` has only one axis \
                 (pick two, e.g. `area,power`)"
            )));
        }
    }
    crate::pareto::reject_duplicate_planes(planes).map_err(Error::Interp)?;
    // Constraints must bound an axis some plane selects; the union is the
    // pass's effective objective space.
    validate_constraints(&opts.constraints, &crate::pareto::axis_union(planes))
        .map_err(Error::Interp)?;

    let gap_tol = clamp_gap_tol(opts.gap_tol);
    let (mut driver, grid_cells) = Driver::prepare(grid, prefix, build, &opts.constraints)?;
    driver.mode = opts.point_mode;
    let empty_result = |planes: &[ObjectiveSpace]| MultiRefineResult {
        planes: planes
            .iter()
            .map(|p| RefineResult {
                rows: Vec::new(),
                skipped: Vec::new(),
                front: Vec::new(),
                objectives: p.clone(),
                constraints: opts.constraints.clone(),
                trace: Vec::new(),
                evaluated: 0,
                pruned: 0,
                grid_cells,
                cancelled: false,
            })
            .collect(),
        trace: Vec::new(),
        rows: Vec::new(),
        skipped: Vec::new(),
        front: Vec::new(),
        constraints: opts.constraints.clone(),
        evaluated: 0,
        pruned: 0,
        grid_cells,
        cancelled: false,
    };
    if driver.clocks.is_empty() || driver.cycles.is_empty() || driver.modes.is_empty() {
        return Ok(empty_result(planes));
    }

    // As in the single-plane driver: per-round wall-time histogram named
    // after the plane set, plus work counters, on the current registry.
    let round_metric = format!(
        "refine.round.{}",
        planes
            .iter()
            .map(|p| p.names().join("_"))
            .collect::<Vec<_>>()
            .join(";")
    );
    let (seed, seed_pruned) = driver.seed(&opts.warm_start, opts.budget);
    adhls_telemetry::timed(&round_metric, || driver.evaluate_cells(eval, &seed))?;
    adhls_telemetry::counter_add("refine.cells_evaluated", seed.len() as u64);
    adhls_telemetry::counter_add("refine.cells_pruned", seed_pruned as u64);
    let front_size = driver.front().len();
    let mut merged = vec![MultiRoundTrace {
        round: 0,
        new_points: seed.len(),
        front_size,
        plane_gaps: vec![0.0; planes.len()],
        pruned: seed_pruned,
    }];
    let mut plane_traces: Vec<Vec<RoundTrace>> = planes
        .iter()
        .map(|_| {
            vec![RoundTrace {
                round: 0,
                new_points: seed.len(),
                front_size,
                max_gap: 0.0,
                pruned: seed_pruned,
            }]
        })
        .collect();
    observe(&merged[0]);

    let mut cancelled = false;
    for round in 1..=opts.max_rounds {
        // Same cancellation point as the single-plane driver: between
        // rounds, so the merged trace is a prefix of the uncancelled one.
        if opts.cancel.as_ref().is_some_and(CancelToken::is_cancelled) {
            cancelled = true;
            adhls_telemetry::counter_add("refine.cancelled", 1);
            break;
        }
        // One shared pending set: a cell several planes want this round is
        // queued once, credited to the first plane that asked.
        let mut pending: HashSet<Cell> = HashSet::new();
        // One front extraction per round, shared by every plane's prune —
        // rows don't change while the round plans.
        let full_front = driver.front();
        // Which plane proposed each cell — so per-plane counts can be
        // re-derived from the cells that *survive* the budget cut below.
        let mut proposer: HashMap<Cell, usize> = HashMap::new();
        let mut candidates: Vec<Cell> = Vec::new();
        let mut plane_gaps = vec![0.0f64; planes.len()];
        let mut plane_pruned = vec![0usize; planes.len()];
        for (pi, plane) in planes.iter().enumerate() {
            let stairs = driver.staircase(plane);
            if stairs.is_empty() {
                continue;
            }
            let (gap, fresh, pruned_now) = if stairs.len() < 2 {
                // Same per-plane policy as the single-plane driver: an
                // exact-axis plane's one-point staircase is a converged
                // corner; an evaluated-axes plane densifies around it.
                if plane_has_exact_axis(plane) {
                    continue;
                }
                let (cands, pruned_now) = driver.plan_densify(&stairs);
                let fresh: Vec<Cell> = cands.into_iter().filter(|c| pending.insert(*c)).collect();
                (0.0, fresh, pruned_now)
            } else {
                // `plan` itself skips (and credits) cells another plane
                // already queued via the shared pending set.
                driver.plan(plane, &stairs, gap_tol, &mut pending, &full_front)
            };
            plane_gaps[pi] = gap;
            plane_pruned[pi] = pruned_now;
            for &c in &fresh {
                proposer.insert(c, pi);
            }
            candidates.extend(fresh);
        }
        if candidates.is_empty() {
            break;
        }
        candidates.sort_unstable();
        if opts.budget > 0 {
            let spent = driver.rows.len() + driver.skipped.len();
            let remaining = opts.budget.saturating_sub(spent);
            if remaining == 0 {
                break;
            }
            candidates.truncate(remaining);
        }
        // Per-plane counts reflect what was *evaluated*, not what was
        // proposed: cells the budget truncation dropped never ran, and
        // counting them would make the per-plane traces disagree with the
        // merged trace (and with a single-plane run's under one plane).
        let mut plane_new = vec![0usize; planes.len()];
        for c in &candidates {
            plane_new[proposer[c]] += 1;
        }
        adhls_telemetry::timed(&round_metric, || driver.evaluate_cells(eval, &candidates))?;
        adhls_telemetry::counter_add("refine.cells_evaluated", candidates.len() as u64);
        adhls_telemetry::counter_add(
            "refine.cells_pruned",
            plane_pruned.iter().sum::<usize>() as u64,
        );
        let front_size = driver.front().len();
        merged.push(MultiRoundTrace {
            round,
            new_points: candidates.len(),
            front_size,
            plane_gaps: plane_gaps.clone(),
            pruned: plane_pruned.iter().sum(),
        });
        for (pi, t) in plane_traces.iter_mut().enumerate() {
            t.push(RoundTrace {
                round,
                new_points: plane_new[pi],
                front_size,
                max_gap: plane_gaps[pi],
                pruned: plane_pruned[pi],
            });
        }
        observe(merged.last().expect("round trace just pushed"));
    }

    let front: Vec<DseRow> = driver
        .front()
        .into_iter()
        .map(|(i, _, _)| driver.rows[i].clone())
        .collect();
    let evaluated = driver.rows.len() + driver.skipped.len();
    let plane_results: Vec<RefineResult> = planes
        .iter()
        .zip(plane_traces)
        .map(|(plane, trace)| RefineResult {
            rows: driver.rows.clone(),
            skipped: driver.skipped.clone(),
            front: front.clone(),
            objectives: plane.clone(),
            constraints: opts.constraints.clone(),
            trace,
            evaluated,
            pruned: driver.pruned,
            grid_cells,
            cancelled,
        })
        .collect();
    Ok(MultiRefineResult {
        planes: plane_results,
        trace: merged,
        rows: driver.rows,
        skipped: driver.skipped,
        front,
        constraints: opts.constraints.clone(),
        evaluated,
        pruned: driver.pruned,
        grid_cells,
        cancelled,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::EngineOptions;
    use adhls_ir::builder::DesignBuilder;
    use adhls_ir::OpKind;
    use adhls_reslib::tsmc90;

    /// Synthetic workload: a small multiply-add chain whose latency budget
    /// is baked in as soft states — cheap to schedule, real area/latency
    /// tradeoff (looser budgets downgrade resources).
    fn build_cell(cell: &SweepCell) -> Design {
        let mut b = DesignBuilder::new("syn");
        let x = b.input("x", 8);
        let y = b.input("y", 8);
        let m1 = b.binop(OpKind::Mul, x, y, 8);
        let m2 = b.binop(OpKind::Mul, m1, x, 8);
        let a = b.binop(OpKind::Add, m1, m2, 16);
        b.soft_waits(cell.cycles.saturating_sub(1));
        b.write("z", a);
        b.finish().unwrap()
    }

    fn grid(clocks: &[u64], cycles: &[u32]) -> SweepGrid {
        SweepGrid::new()
            .clocks_ps(clocks.iter().copied())
            .cycles(cycles.iter().copied())
    }

    fn engine(lib: &adhls_reslib::Library) -> Engine<'_> {
        Engine::with_options(
            lib,
            Default::default(),
            EngineOptions {
                skip_infeasible: true,
                ..Default::default()
            },
        )
    }

    #[test]
    fn tiny_grid_seed_is_the_whole_grid_and_front_is_exact() {
        // 3x3 axes: first/mid/last covers every index, so the adaptive
        // front must equal the exhaustive front bit for bit.
        let lib = tsmc90::library();
        let g = grid(&[1100, 1400, 1800], &[2, 4, 6]);
        let eng = engine(&lib);
        let r = refine(&eng, &g, "syn", build_cell, &RefineOptions::default()).unwrap();
        assert_eq!(r.evaluated, 9);
        assert_eq!(r.grid_cells, 9);
        let exhaustive = g.expand("syn", build_cell).unwrap();
        let ex_rows = engine(&lib).evaluate_points(&exhaustive).unwrap().rows;
        assert_eq!(r.front, crate::pareto::pareto_front(&ex_rows));
        assert_eq!(r.trace[0].round, 0);
        assert_eq!(r.trace[0].new_points, 9);
    }

    #[test]
    fn refined_cells_are_grid_cells_and_fewer_than_exhaustive() {
        let lib = tsmc90::library();
        let g = grid(&[1100, 1250, 1400, 1600, 1800, 2100], &[2, 3, 4, 5, 6]);
        let eng = engine(&lib);
        let r = refine(
            &eng,
            &g,
            "syn",
            build_cell,
            &RefineOptions {
                gap_tol: 0.25,
                ..Default::default()
            },
        )
        .unwrap();
        assert!(
            r.evaluated < r.grid_cells,
            "adaptive must beat exhaustive: {} vs {}",
            r.evaluated,
            r.grid_cells
        );
        // Every evaluated row is bit-identical to the exhaustive sweep's
        // row for the same cell (name match ⇒ full row match).
        let exhaustive = g.expand("syn", build_cell).unwrap();
        let ex_rows = engine(&lib).evaluate_points(&exhaustive).unwrap().rows;
        for row in &r.rows {
            let twin = ex_rows
                .iter()
                .find(|e| e.name == row.name)
                .unwrap_or_else(|| panic!("{} not a grid cell", row.name));
            assert_eq!(row, twin);
        }
        assert!(!r.front.is_empty());
    }

    #[test]
    fn budget_caps_evaluations() {
        let lib = tsmc90::library();
        let g = grid(&[1100, 1250, 1400, 1600, 1800, 2100], &[2, 3, 4, 5, 6]);
        let eng = engine(&lib);
        let r = refine(
            &eng,
            &g,
            "syn",
            build_cell,
            &RefineOptions {
                budget: 12,
                gap_tol: 0.0,
                ..Default::default()
            },
        )
        .unwrap();
        assert!(r.evaluated <= 12, "budget 12, spent {}", r.evaluated);
    }

    #[test]
    fn refinement_is_deterministic() {
        let lib = tsmc90::library();
        let g = grid(&[1100, 1250, 1400, 1600, 1800], &[2, 3, 4, 6]);
        let opts = RefineOptions {
            gap_tol: 0.1,
            ..Default::default()
        };
        let a = refine(&engine(&lib), &g, "syn", build_cell, &opts).unwrap();
        let b = refine(&engine(&lib), &g, "syn", build_cell, &opts).unwrap();
        assert_eq!(a, b, "same grid, same options, same everything");
    }

    #[test]
    fn descent_rows_are_grid_cells_and_rungs_tighten() {
        let lib = tsmc90::library();
        let g = grid(&[1100, 1250, 1400, 1600, 1800, 2100], &[2, 3, 4, 5, 6]);
        let r = descend(
            &engine(&lib),
            &g,
            "syn",
            build_cell,
            &DescentOptions::default(),
        )
        .unwrap();
        assert!(!r.rows.is_empty());
        assert!(!r.front.is_empty());
        assert!(!r.trace.is_empty());
        // The ladder tightens monotonically: the default plane's secondary
        // axis (latency) is minimized, so bounds descend.
        for pair in r.trace.windows(2) {
            assert!(pair[1].bound <= pair[0].bound, "{:?}", r.trace);
        }
        // Every rung with an incumbent respects its bound, and every
        // evaluated row is bit-identical to the exhaustive sweep's row for
        // the same cell.
        let exhaustive = g.expand("syn", build_cell).unwrap();
        let ex_rows = engine(&lib).evaluate_points(&exhaustive).unwrap().rows;
        for rung in &r.trace {
            if let Some(best) = &rung.best {
                let row = r.rows.iter().find(|row| row.name == *best).unwrap();
                assert!(objectives(row).latency_ps <= rung.bound + 1e-9, "{rung:?}");
            }
        }
        for row in &r.rows {
            let twin = ex_rows
                .iter()
                .find(|e| e.name == row.name)
                .unwrap_or_else(|| panic!("{} not a grid cell", row.name));
            assert_eq!(row, twin);
        }
    }

    #[test]
    fn descent_is_deterministic_and_respects_budget() {
        let lib = tsmc90::library();
        let g = grid(&[1100, 1250, 1400, 1600, 1800], &[2, 3, 4, 6]);
        let opts = DescentOptions {
            budget: 12,
            rungs: 4,
            ..Default::default()
        };
        let a = descend(&engine(&lib), &g, "syn", build_cell, &opts).unwrap();
        let b = descend(&engine(&lib), &g, "syn", build_cell, &opts).unwrap();
        assert_eq!(a, b, "same grid, same options, same everything");
        assert!(a.evaluated <= 12, "budget 12, spent {}", a.evaluated);
    }

    #[test]
    fn descent_rejects_single_axis_planes() {
        let lib = tsmc90::library();
        let g = grid(&[1100, 1400], &[2, 4]);
        let err = descend(
            &engine(&lib),
            &g,
            "syn",
            build_cell,
            &DescentOptions {
                objectives: ObjectiveSpace::parse("area").unwrap(),
                ..Default::default()
            },
        )
        .unwrap_err();
        assert!(err.to_string().contains("two-axis"), "{err}");
    }

    #[test]
    fn empty_axes_refine_to_nothing() {
        let lib = tsmc90::library();
        let g = SweepGrid::new().clocks_ps([1100]);
        let r = refine(
            &engine(&lib),
            &g,
            "syn",
            build_cell,
            &RefineOptions::default(),
        )
        .unwrap();
        assert!(r.rows.is_empty());
        assert!(r.front.is_empty());
        assert!(r.trace.is_empty());
    }

    #[test]
    fn nonfinite_gap_tol_is_clamped_not_honored() {
        let lib = tsmc90::library();
        let g = grid(&[1100, 1400, 1800], &[2, 4, 6]);
        let r = refine(
            &engine(&lib),
            &g,
            "syn",
            build_cell,
            &RefineOptions {
                gap_tol: f64::NAN,
                ..Default::default()
            },
        )
        .unwrap();
        assert!(
            r.evaluated >= 9,
            "NaN tolerance must not stop refinement early"
        );
    }

    #[test]
    fn warm_start_cells_parse_export_documents_and_skip_foreign_names() {
        let json = r#"{"sweep": [], "front": [
            {"name":"syn-c1100-l2","a_slack":10},
            {"name":"D7","a_slack":11},
            {"name":"syn-c1400-l4-ii2","a_slack":12},
            {"name":"syn-c1100-l2","a_slack":10}
        ]}"#;
        let cells = warm_start_cells(json).unwrap();
        assert_eq!(
            cells,
            vec![
                SweepCell {
                    clock_ps: 1100,
                    cycles: 2,
                    pipeline_ii: None
                },
                SweepCell {
                    clock_ps: 1400,
                    cycles: 4,
                    pipeline_ii: Some(2)
                },
            ],
            "grid names map to cells, D7 and duplicates are dropped"
        );
        assert!(warm_start_cells("not json").is_err());
        assert!(warm_start_cells("{\"x\":1}").is_err());
    }

    #[test]
    fn warm_start_extends_the_seed_and_preserves_the_front() {
        let lib = tsmc90::library();
        let g = grid(&[1100, 1250, 1400, 1600, 1800, 2100], &[2, 3, 4, 5, 6]);
        let opts = RefineOptions {
            gap_tol: 0.25,
            ..Default::default()
        };
        let cold = refine(&engine(&lib), &g, "syn", build_cell, &opts).unwrap();
        // Warm-start from the cold run's front (as if re-imported from its
        // exported JSON): the warm seed contains every front cell, and the
        // refined front can only be at least as good — here, identical.
        let warm_cells: Vec<SweepCell> = cold
            .front
            .iter()
            .map(|r| {
                let (clock_ps, cycles, pipeline_ii) =
                    adhls_core::dse::DsePoint::parse_grid_name(&r.name).unwrap();
                SweepCell {
                    clock_ps,
                    cycles,
                    pipeline_ii,
                }
            })
            .collect();
        let warm = refine(
            &engine(&lib),
            &g,
            "syn",
            build_cell,
            &RefineOptions {
                warm_start: warm_cells.clone(),
                ..opts
            },
        )
        .unwrap();
        assert!(
            warm.trace[0].new_points >= cold.trace[0].new_points,
            "warm seed is a superset of the cold seed"
        );
        for c in &warm_cells {
            let name =
                adhls_core::dse::DsePoint::grid_name("syn", c.clock_ps, c.cycles, c.pipeline_ii);
            assert!(
                warm.rows.iter().any(|r| r.name == name),
                "warm cell {name} was evaluated in the warm run"
            );
        }
        assert_eq!(warm.front, cold.front, "same grid, same converged front");
        // Cells that name no cell of this grid are ignored, not errors.
        let stray = refine(
            &engine(&lib),
            &g,
            "syn",
            build_cell,
            &RefineOptions {
                warm_start: vec![SweepCell {
                    clock_ps: 99_999,
                    cycles: 77,
                    pipeline_ii: Some(3),
                }],
                gap_tol: 0.25,
                ..Default::default()
            },
        )
        .unwrap();
        assert_eq!(stray.trace[0].new_points, cold.trace[0].new_points);
    }

    #[test]
    fn single_axis_spaces_are_rejected_not_hill_walked() {
        let lib = tsmc90::library();
        let g = grid(&[1100, 1400, 1800], &[2, 4, 6]);
        let err = refine(
            &engine(&lib),
            &g,
            "syn",
            build_cell,
            &RefineOptions {
                objectives: ObjectiveSpace::new([Objective::PowerTotal]).unwrap(),
                ..Default::default()
            },
        )
        .unwrap_err();
        assert!(err.to_string().contains("two-axis"), "{err}");
    }

    #[test]
    fn warm_start_round_trips_the_exported_objective_space() {
        let json = r#"{"objectives":["area","power"],"sweep":[],
            "front":[{"name":"syn-c1100-l2","a_slack":10}]}"#;
        let ws = WarmStart::parse(json).unwrap();
        assert_eq!(
            ws.objectives,
            Some(ObjectiveSpace::parse("area,power").unwrap())
        );
        assert_eq!(ws.cells.len(), 1);
        // Pre-redesign exports carry no objectives field: None, not an
        // error — and the cells still load.
        let legacy = WarmStart::parse(r#"{"front":[{"name":"syn-c1100-l2"}]}"#).unwrap();
        assert_eq!(legacy.objectives, None);
        assert_eq!(legacy.cells, ws.cells);
        // A recorded-but-bogus space is an error, not a silent default.
        assert!(WarmStart::parse(r#"{"objectives":["warp"],"front":[]}"#).is_err());
        assert!(WarmStart::parse(r#"{"objectives":7,"front":[]}"#).is_err());
    }

    #[test]
    fn power_plane_refinement_converges_and_records_its_space() {
        let lib = tsmc90::library();
        let g = grid(&[1100, 1250, 1400, 1600, 1800, 2100], &[2, 3, 4, 5, 6]);
        let space = ObjectiveSpace::parse("area,power").unwrap();
        let r = refine(
            &engine(&lib),
            &g,
            "syn",
            build_cell,
            &RefineOptions {
                gap_tol: 0.2,
                objectives: space.clone(),
                ..Default::default()
            },
        )
        .unwrap();
        assert_eq!(r.objectives, space);
        assert!(!r.front.is_empty());
        assert!(r.evaluated <= r.grid_cells, "never beyond exhaustive");
        assert!(
            !crate::pareto::tradeoff_staircase_in(&space, &r.rows).is_empty(),
            "the steering plane has a staircase to converge on"
        );
        // Every evaluated cell is still a cell of the exhaustive grid.
        let exhaustive = g.expand("syn", build_cell).unwrap();
        let ex_rows = engine(&lib).evaluate_points(&exhaustive).unwrap().rows;
        for row in &r.rows {
            assert!(
                ex_rows.iter().any(|e| e == row),
                "{} diverged from the exhaustive sweep",
                row.name
            );
        }
        // The default-space result is a different run (different steering
        // plane), but both report full-objective fronts over their rows.
        let default_run = refine(
            &engine(&lib),
            &g,
            "syn",
            build_cell,
            &RefineOptions {
                gap_tol: 0.2,
                ..Default::default()
            },
        )
        .unwrap();
        assert_eq!(default_run.objectives, ObjectiveSpace::default());
    }

    #[test]
    fn progress_observer_sees_every_trace_entry() {
        let lib = tsmc90::library();
        let g = grid(&[1100, 1250, 1400, 1600, 1800], &[2, 3, 4, 6]);
        let mut seen = Vec::new();
        let r = refine_with_progress(
            &engine(&lib),
            &g,
            "syn",
            build_cell,
            &RefineOptions {
                gap_tol: 0.1,
                ..Default::default()
            },
            |t| seen.push(t.clone()),
        )
        .unwrap();
        assert_eq!(seen, r.trace, "streamed traces match the result trace");
    }

    #[test]
    fn constrained_refine_front_is_the_feasible_slice() {
        let lib = tsmc90::library();
        let g = grid(&[1100, 1250, 1400, 1600, 1800, 2100], &[2, 3, 4, 5, 6]);
        // Reference: the unconstrained exhaustive sweep.
        let exhaustive = g.expand("syn", build_cell).unwrap();
        let ex_rows = engine(&lib).evaluate_points(&exhaustive).unwrap().rows;
        // A latency budget cutting through the middle of the plane.
        let lats: Vec<f64> = ex_rows.iter().map(|r| r.latency_ps).collect();
        let mid = lats.iter().copied().fold(f64::NEG_INFINITY, f64::max) / 2.0;
        let cs = vec![Constraint::parse(&format!("latency<={mid}")).unwrap()];
        let r = refine(
            &engine(&lib),
            &g,
            "syn",
            build_cell,
            &RefineOptions {
                gap_tol: 0.0,
                constraints: cs.clone(),
                ..Default::default()
            },
        )
        .unwrap();
        assert_eq!(r.constraints, cs);
        // Every reported front row is feasible, and the front equals the
        // post-hoc constrained extraction over the same evaluations.
        assert!(r.front.iter().all(|row| row.latency_ps <= mid));
        assert_eq!(
            r.front,
            crate::pareto::pareto_front_in_constrained(&ObjectiveSpace::full(), &cs, &r.rows)
        );
        // The provable-infeasibility skip kept the budget-violating cells
        // away from the evaluator entirely.
        assert!(r.rows.iter().all(|row| row.latency_ps <= mid));
        assert!(r.pruned > 0, "closed-form infeasible cells were skipped");
        assert!(r.evaluated < r.grid_cells);
        // The constrained staircase is the feasible slice of the
        // unconstrained plane staircase (improving bound ⇒ commutes).
        let feasible_slice: Vec<DseRow> = crate::pareto::tradeoff_staircase(&ex_rows)
            .into_iter()
            .filter(|row| row.latency_ps <= mid)
            .collect();
        let refined_stairs =
            crate::pareto::tradeoff_staircase_in_constrained(&r.objectives, &cs, &r.rows);
        for s in &feasible_slice {
            assert!(
                refined_stairs.iter().any(|a| a == s)
                    || refined_stairs
                        .iter()
                        .any(|a| a.a_slack <= s.a_slack && a.latency_ps <= s.latency_ps),
                "feasible exhaustive staircase point {} is not covered",
                s.name
            );
        }
    }

    #[test]
    fn constraints_on_unselected_axes_are_rejected() {
        let lib = tsmc90::library();
        let g = grid(&[1100, 1400, 1800], &[2, 4, 6]);
        let err = refine(
            &engine(&lib),
            &g,
            "syn",
            build_cell,
            &RefineOptions {
                constraints: vec![Constraint::parse("power<=10").unwrap()],
                ..Default::default()
            },
        )
        .unwrap_err();
        assert!(err.to_string().contains("power"), "{err}");
        // The same bound is fine once the space selects the axis.
        refine(
            &engine(&lib),
            &g,
            "syn",
            build_cell,
            &RefineOptions {
                objectives: ObjectiveSpace::parse("area,power").unwrap(),
                constraints: vec![Constraint::parse("power<=1e9").unwrap()],
                ..Default::default()
            },
        )
        .unwrap();
    }

    #[test]
    fn infeasible_constraints_refine_to_an_empty_front() {
        let lib = tsmc90::library();
        let g = grid(&[1100, 1400, 1800], &[2, 4, 6]);
        let r = refine(
            &engine(&lib),
            &g,
            "syn",
            build_cell,
            &RefineOptions {
                // No cell of this grid is this fast.
                constraints: vec![Constraint::parse("latency<=1").unwrap()],
                ..Default::default()
            },
        )
        .unwrap();
        assert!(r.front.is_empty());
        assert_eq!(r.evaluated, 0, "every cell was provably infeasible");
        assert!(r.pruned > 0);
    }

    #[test]
    fn empty_constraints_are_bit_identical_to_the_unconstrained_run() {
        let lib = tsmc90::library();
        let g = grid(&[1100, 1250, 1400, 1600, 1800], &[2, 3, 4, 6]);
        let opts = RefineOptions {
            gap_tol: 0.1,
            ..Default::default()
        };
        let plain = refine(&engine(&lib), &g, "syn", build_cell, &opts).unwrap();
        let constrained = refine(
            &engine(&lib),
            &g,
            "syn",
            build_cell,
            &RefineOptions {
                constraints: Vec::new(),
                ..opts
            },
        )
        .unwrap();
        assert_eq!(plain, constrained);
    }

    #[test]
    fn warm_start_round_trips_exported_constraints() {
        let json = r#"{"objectives":["area","power"],
            "constraints":["area<=1500","power<=40"],
            "front":[{"name":"syn-c1100-l2","a_slack":10}]}"#;
        let ws = WarmStart::parse(json).unwrap();
        assert_eq!(
            ws.constraints,
            vec![
                Constraint::parse("area<=1500").unwrap(),
                Constraint::parse("power<=40").unwrap(),
            ]
        );
        // Absent and null mean unconstrained, like pre-constraint exports.
        let legacy = WarmStart::parse(r#"{"front":[{"name":"syn-c1100-l2"}]}"#).unwrap();
        assert!(legacy.constraints.is_empty());
        // A recorded-but-bogus constraint is an error, not a default.
        assert!(WarmStart::parse(r#"{"constraints":["warp<=1"],"front":[]}"#).is_err());
        assert!(WarmStart::parse(r#"{"constraints":7,"front":[]}"#).is_err());
    }

    #[test]
    fn multi_plane_refinement_shares_every_evaluation() {
        let lib = tsmc90::library();
        let g = grid(&[1100, 1250, 1400, 1600, 1800, 2100], &[2, 3, 4, 5, 6]);
        let planes = ObjectiveSpace::parse_multi("area,latency;area,power").unwrap();
        let opts = RefineOptions {
            gap_tol: 0.1,
            ..Default::default()
        };
        let multi = refine_multi(&engine(&lib), &g, "syn", build_cell, &opts, &planes).unwrap();
        assert_eq!(multi.planes.len(), 2);
        // No cell is evaluated twice: the row names are unique.
        let mut names: Vec<&str> = multi.rows.iter().map(|r| r.name.as_str()).collect();
        names.sort_unstable();
        let before = names.len();
        names.dedup();
        assert_eq!(names.len(), before, "a cell was evaluated twice");
        assert_eq!(multi.evaluated, multi.rows.len() + multi.skipped.len());
        // Per-plane results share the evaluation set and record their own
        // plane; the merged trace is index-aligned with the planes.
        for (pi, plane_result) in multi.planes.iter().enumerate() {
            assert_eq!(plane_result.objectives, planes[pi]);
            assert_eq!(plane_result.rows, multi.rows);
            assert_eq!(plane_result.front, multi.front);
            assert_eq!(plane_result.trace.len(), multi.trace.len());
            for (t, m) in plane_result.trace.iter().zip(&multi.trace) {
                assert_eq!(t.round, m.round);
                assert_eq!(t.max_gap, m.plane_gaps[pi]);
            }
        }
        // Each plane's staircase over the shared rows covers its
        // single-plane run's staircase within the tolerance box (the multi
        // pass saw a superset of useful cells, so it can only be at least
        // as resolved).
        for (pi, plane) in planes.iter().enumerate() {
            let single = refine(
                &engine(&lib),
                &g,
                "syn",
                build_cell,
                &RefineOptions {
                    objectives: plane.clone(),
                    ..opts.clone()
                },
            )
            .unwrap();
            let single_stairs = crate::pareto::tradeoff_staircase_in(plane, &single.rows);
            let multi_stairs = crate::pareto::tradeoff_staircase_in(plane, &multi.rows);
            assert!(
                !multi_stairs.is_empty(),
                "plane {pi} has a staircase in the merged pass"
            );
            let (p, s) = plane.plane();
            let val = |r: &DseRow, a: Objective| a.key(&crate::pareto::objectives(r));
            for sp in &single_stairs {
                let covered = multi_stairs
                    .iter()
                    .any(|m| val(m, p) <= val(sp, p) && val(m, s) <= val(sp, s) + 1e-9);
                assert!(
                    covered,
                    "plane {pi}: single-plane staircase point {} not covered by the multi pass",
                    sp.name
                );
            }
        }
    }

    #[test]
    fn multi_plane_budget_truncation_keeps_traces_consistent() {
        // Per-plane round counts must describe what was *evaluated*, not
        // what was proposed: under a tight budget the merged batch is
        // truncated, and the per-plane new_points must sum to the merged
        // (post-truncation) count in every round.
        let lib = tsmc90::library();
        let g = grid(&[1100, 1250, 1400, 1600, 1800, 2100], &[2, 3, 4, 5, 6]);
        let planes = ObjectiveSpace::parse_multi("area,latency;area,power").unwrap();
        let multi = refine_multi(
            &engine(&lib),
            &g,
            "syn",
            build_cell,
            &RefineOptions {
                budget: 11,
                gap_tol: 0.0,
                ..Default::default()
            },
            &planes,
        )
        .unwrap();
        assert!(
            multi.evaluated <= 11,
            "budget 11, spent {}",
            multi.evaluated
        );
        for (ri, m) in multi.trace.iter().enumerate() {
            let per_plane_sum: usize = multi.planes.iter().map(|p| p.trace[ri].new_points).sum();
            // The shared seed round is credited in full to every plane
            // (they all consumed it); refinement rounds partition the
            // evaluated batch across the proposing planes.
            if ri == 0 {
                for p in &multi.planes {
                    assert_eq!(p.trace[0].new_points, m.new_points);
                }
            } else {
                assert_eq!(
                    per_plane_sum, m.new_points,
                    "round {ri}: per-plane counts disagree with the merged trace"
                );
            }
        }
    }

    #[test]
    fn multi_plane_rejects_empty_duplicate_and_single_axis_planes() {
        let lib = tsmc90::library();
        let g = grid(&[1100, 1400, 1800], &[2, 4, 6]);
        let opts = RefineOptions::default();
        let err = refine_multi(&engine(&lib), &g, "syn", build_cell, &opts, &[]).unwrap_err();
        assert!(err.to_string().contains("at least one"), "{err}");
        let dup = ObjectiveSpace::parse_multi("area,power").unwrap();
        let err = refine_multi(
            &engine(&lib),
            &g,
            "syn",
            build_cell,
            &opts,
            &[dup[0].clone(), dup[0].clone()],
        )
        .unwrap_err();
        assert!(err.to_string().contains("twice"), "{err}");
        let err = refine_multi(
            &engine(&lib),
            &g,
            "syn",
            build_cell,
            &opts,
            &[ObjectiveSpace::new([Objective::Area]).unwrap()],
        )
        .unwrap_err();
        assert!(err.to_string().contains("two-axis"), "{err}");
        // Constraints must hit an axis of at least one plane.
        let planes = ObjectiveSpace::parse_multi("area,latency;area,power").unwrap();
        let err = refine_multi(
            &engine(&lib),
            &g,
            "syn",
            build_cell,
            &RefineOptions {
                constraints: vec![Constraint::parse("throughput>=1").unwrap()],
                ..Default::default()
            },
            &planes,
        )
        .unwrap_err();
        assert!(err.to_string().contains("throughput"), "{err}");
    }

    #[test]
    fn multi_plane_single_plane_matches_the_dedicated_driver_rows() {
        // One plane through refine_multi explores the same grid the
        // dedicated driver does — same seed, same gap logic — so the
        // evaluated set and front must coincide.
        let lib = tsmc90::library();
        let g = grid(&[1100, 1250, 1400, 1600, 1800], &[2, 3, 4, 6]);
        let opts = RefineOptions {
            gap_tol: 0.1,
            ..Default::default()
        };
        let single = refine(&engine(&lib), &g, "syn", build_cell, &opts).unwrap();
        let multi = refine_multi(
            &engine(&lib),
            &g,
            "syn",
            build_cell,
            &opts,
            &[ObjectiveSpace::default()],
        )
        .unwrap();
        assert_eq!(multi.rows, single.rows);
        assert_eq!(multi.front, single.front);
        assert_eq!(multi.evaluated, single.evaluated);
        assert_eq!(multi.planes[0].trace, single.trace);
        let observer_run = {
            let mut seen = Vec::new();
            let r = refine_multi_with_progress(
                &engine(&lib),
                &g,
                "syn",
                build_cell,
                &opts,
                &[ObjectiveSpace::default()],
                |t| seen.push(t.clone()),
            )
            .unwrap();
            assert_eq!(seen, r.trace, "streamed traces match the result trace");
            r
        };
        assert_eq!(observer_run, multi, "observer does not perturb the run");
    }

    #[test]
    fn duplicate_axis_values_do_not_double_evaluate() {
        let lib = tsmc90::library();
        let g = grid(&[1400, 1100, 1400, 1100], &[4, 2, 4]);
        let r = refine(
            &engine(&lib),
            &g,
            "syn",
            build_cell,
            &RefineOptions::default(),
        )
        .unwrap();
        // Deduped axes: 2 clocks x 2 cycles = 4 distinct cells at most,
        // and the reported exhaustive denominator matches the deduped
        // grid, not the raw duplicate-laden axes.
        assert_eq!(r.grid_cells, 4, "grid_cells must count distinct cells");
        assert!(
            r.evaluated <= 4,
            "deduped grid has 4 cells, saw {}",
            r.evaluated
        );
        let mut names: Vec<&str> = r.rows.iter().map(|x| x.name.as_str()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), r.rows.len(), "duplicate rows evaluated");
    }
}
