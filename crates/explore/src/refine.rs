//! Adaptive front refinement: approximate the exhaustive grid's Pareto
//! front while evaluating only a fraction of its cells, steering through a
//! selectable tradeoff plane ([`RefineOptions::objectives`]).
//!
//! The paper's Table-4 exploration evaluates a full clock × latency × II
//! grid. That is exact but scales as the product of the axes; the searches
//! in the space/time-scaling literature instead *steer* evaluation toward
//! the front. This driver does the same over the repo's grids:
//!
//! 1. evaluate a coarse **seed** (the corner and midpoint of each axis, all
//!    pipeline modes),
//! 2. extract the **tradeoff staircase** in the selected objective space's
//!    plane ([`crate::pareto::staircase_indices_in`]) — the Table-4
//!    area/delay curve under the default space, the area/power curve under
//!    `--objectives area,power` — and measure the normalized gap between
//!    each pair of adjacent staircase points (the full four-objective
//!    front approaches the whole grid on realistic workloads, so it cannot
//!    drive convergence; a two-axis staircase can),
//! 3. **bisect** the wide gaps — in axis-index space, so every refined
//!    cell is a cell of the exhaustive grid and the memo cache dedupes
//!    re-derived neighborhoods — escalating per gap from index midpoints
//!    to rectangle corners to the endpoints' axis neighbors, and skipping
//!    candidates whose exact, closed-form value on an *exact* plane axis
//!    (latency/throughput, via [`adhls_core::dse::grid_item_time_ps`])
//!    lies outside the gap's window on that axis — planes without an
//!    exact axis (e.g. area/power) simply keep every candidate,
//! 4. **prune** interior candidates that provably cannot matter: latency
//!    and throughput of a grid cell are exact without evaluation, and its
//!    area/power are bounded below by the better of the two bracketing
//!    staircase points (the monotone-interpolation bound), so if that
//!    optimistic corner is already dominated by the current front the real
//!    evaluation cannot do better,
//! 5. stop when every gap is within tolerance, the point budget is spent,
//!    or a round produces nothing new.
//!
//! One plane-specific wrinkle: a staircase needs two points before any gap
//! exists. A plane whose axes are both evaluated quantities — area/power,
//! say — can seed to a *single* non-dominated corner cell even though the
//! true plane front holds more; refinement then densifies that point's
//! axis neighborhood until the staircase grows or the neighborhood is
//! exhausted, instead of declaring premature convergence. Planes with a
//! closed-form axis (latency/throughput) skip this: their seed corners
//! already span the exact axis, so a one-point staircase is treated as
//! converged — exactly the pre-redesign behavior of the default plane.
//!
//! The driver is deterministic: candidate generation iterates the front in
//! its deterministic order, candidate batches are sorted by cell index, and
//! evaluation goes through an [`Evaluator`] whose rows are bit-identical to
//! serial evaluation — so two refinements of the same grid (serial,
//! parallel, or racing each other on one shared pool) produce the same
//! rows, front, and trace.

use crate::engine::{Engine, SweepResult};
use crate::pareto::{
    dominates, objectives, pareto_indices, staircase_indices_in, Objective, ObjectiveSpace,
    Objectives,
};
use crate::pool::EvaluatorPool;
use crate::sweep::{SweepCell, SweepGrid};
use adhls_core::dse::{grid_item_time_ps, DsePoint, DseRow};
use adhls_ir::{Design, Error, Result};
use std::collections::HashSet;

/// Anything that can evaluate a batch of points: the per-sweep
/// [`Engine`] or the persistent [`EvaluatorPool`]. Rows must come back in
/// input order, bit-identical to serial evaluation (both implementors
/// guarantee this).
pub trait Evaluator {
    /// Evaluates `points`, returning rows in input order.
    ///
    /// # Errors
    ///
    /// Propagates scheduling failures per the implementor's policy (strict
    /// evaluators fail the batch; skip-infeasible evaluators record them).
    fn evaluate_points(&self, points: &[DsePoint]) -> Result<SweepResult>;
}

impl Evaluator for Engine<'_> {
    fn evaluate_points(&self, points: &[DsePoint]) -> Result<SweepResult> {
        self.evaluate(points)
    }
}

impl Evaluator for EvaluatorPool {
    fn evaluate_points(&self, points: &[DsePoint]) -> Result<SweepResult> {
        self.evaluate(points)
    }
}

/// Tuning knobs for [`refine`].
#[derive(Debug, Clone, PartialEq)]
pub struct RefineOptions {
    /// Maximum number of grid cells to evaluate, seed included
    /// (`0` = no budget: refine until the tolerance is met or the grid is
    /// exhausted).
    pub budget: usize,
    /// Stop once no adjacent pair of tradeoff-staircase points is farther
    /// apart than this, measured as the Chebyshev distance in
    /// (area, latency) normalized by the staircase's bounding box.
    /// Non-finite or negative values are treated as `0.0` (refine until
    /// nothing new appears).
    pub gap_tol: f64,
    /// Safety valve on refinement rounds (`0` = seed only).
    pub max_rounds: usize,
    /// Warm-start cells — typically a previous run's exported front (see
    /// [`warm_start_cells`]) — evaluated with the seed so refinement
    /// resumes from the old front instead of re-deriving it. Cells that
    /// name no cell of this grid are ignored; on a shared
    /// [`EvaluatorPool`] the warm cells are usually cache hits, making a
    /// warm re-refinement nearly free.
    pub warm_start: Vec<SweepCell>,
    /// The objective space whose plane (its first two axes) steers the
    /// refinement: staircase extraction, gap measurement, and candidate
    /// windowing all happen in this plane. Defaults to the paper's
    /// (area, latency) tradeoff; `area,power` gives power-aware
    /// refinement. The reported [`RefineResult::front`] stays the full
    /// four-objective front in every space (see [`RefineResult`]).
    pub objectives: ObjectiveSpace,
}

impl Default for RefineOptions {
    fn default() -> Self {
        RefineOptions {
            budget: 0,
            gap_tol: 0.05,
            max_rounds: 32,
            warm_start: Vec::new(),
            objectives: ObjectiveSpace::default(),
        }
    }
}

/// A parsed warm-start document: the grid cells a previously exported
/// front/sweep names, plus the objective space the export records having
/// produced it (absent in pre-redesign exports and bare row arrays).
///
/// The cells are space-independent — they are grid coordinates, and a
/// warm seed only ever *adds* evaluations — so a front exported under one
/// space safely warm-starts a refinement in any other; the recorded space
/// is surfaced so callers can say so (the CLI logs it).
#[derive(Debug, Clone, PartialEq)]
pub struct WarmStart {
    /// Deduplicated grid cells named by the document's front (or sweep).
    pub cells: Vec<SweepCell>,
    /// The objective space the document was exported under, when recorded.
    pub objectives: Option<ObjectiveSpace>,
}

impl WarmStart {
    /// Parses a previously exported sweep/front/refine JSON document (any
    /// of `export::front_to_json_in`, `export::refine_to_json`, or a bare
    /// row array). Rows are matched by their grid names
    /// (`prefix-c<clock>-l<cycles>[-ii<n>]`); rows whose names encode no
    /// grid cell (e.g. the paper's hand-named D1–D15 points) are skipped,
    /// because they cannot be mapped back onto any grid.
    ///
    /// # Errors
    ///
    /// [`Error::Interp`] when `json` is not parseable JSON, has none of
    /// the recognized shapes, or records an invalid `objectives` list.
    pub fn parse(json: &str) -> Result<WarmStart> {
        use adhls_core::json::Value;
        let doc = Value::parse(json)
            .map_err(|e| Error::Interp(format!("warm-start JSON did not parse: {e}")))?;
        // The one shared `objectives` grammar — identical to the wire's
        // request field, so exported documents and requests cannot drift.
        let objectives = ObjectiveSpace::from_json(doc.get("objectives"))
            .map_err(|e| Error::Interp(format!("warm-start `objectives`: {e}")))?;
        // Prefer the front (the useful part of an exported document); fall
        // back to the sweep, then to a bare array.
        let rows = doc
            .get("front")
            .and_then(Value::as_arr)
            .or_else(|| doc.get("sweep").and_then(Value::as_arr))
            .or_else(|| doc.as_arr())
            .ok_or_else(|| Error::Interp("warm-start JSON has no `front`/`sweep` array".into()))?;
        let mut cells = Vec::new();
        for row in rows {
            let Some(name) = row.get("name").and_then(Value::as_str) else {
                continue;
            };
            if let Some((clock_ps, cycles, pipeline_ii)) = DsePoint::parse_grid_name(name) {
                let cell = SweepCell {
                    clock_ps,
                    cycles,
                    pipeline_ii,
                };
                if !cells.contains(&cell) {
                    cells.push(cell);
                }
            }
        }
        Ok(WarmStart { cells, objectives })
    }
}

/// Extracts just the warm-start cells of an exported document — see
/// [`WarmStart::parse`], which also surfaces the recorded objective space.
///
/// # Errors
///
/// As [`WarmStart::parse`].
pub fn warm_start_cells(json: &str) -> Result<Vec<SweepCell>> {
    Ok(WarmStart::parse(json)?.cells)
}

/// One refinement round's bookkeeping, exported with the sweep so runs are
/// auditable (`export::refine_to_json`).
#[derive(Debug, Clone, PartialEq)]
pub struct RoundTrace {
    /// Round number (`0` is the seed).
    pub round: usize,
    /// Cells submitted for evaluation this round.
    pub new_points: usize,
    /// Front size after integrating the round's rows.
    pub front_size: usize,
    /// The widest normalized staircase gap that triggered this round
    /// (`0.0` for the seed round and for single-point-staircase
    /// densification rounds, where no gap exists yet). Gaps the grid has
    /// no cells for (real discontinuities in the design space) keep this
    /// above the tolerance even at convergence.
    pub max_gap: f64,
    /// Candidate cells pruned by the optimistic-bound test this round.
    pub pruned: usize,
}

/// Outcome of one adaptive refinement.
#[derive(Debug, Clone, PartialEq)]
pub struct RefineResult {
    /// Every evaluated row, in deterministic (round, cell-index) order.
    pub rows: Vec<DseRow>,
    /// Infeasible cells as (name, error), if the evaluator skips them.
    pub skipped: Vec<(String, String)>,
    /// The full four-objective Pareto front over `rows` — in every
    /// objective space, so the reported front never discards information
    /// the steering plane happens to ignore. Project it through
    /// [`crate::pareto::pareto_front_in`] /
    /// [`crate::pareto::tradeoff_staircase_in`] with
    /// [`RefineResult::objectives`] for the plane the run converged in.
    pub front: Vec<DseRow>,
    /// The objective space that steered this refinement
    /// ([`RefineOptions::objectives`]) — recorded so exports can say which
    /// plane produced the result.
    pub objectives: ObjectiveSpace,
    /// Per-round refinement metadata, seed first.
    pub trace: Vec<RoundTrace>,
    /// Cells submitted for evaluation (`rows.len() + skipped.len()`).
    pub evaluated: usize,
    /// Cells discarded by the dominance prune without evaluation.
    pub pruned: usize,
    /// Cell count of the exhaustive grid this refinement approximates,
    /// over the deduplicated axes (duplicate axis entries name the same
    /// cells and don't inflate the count).
    pub grid_cells: usize,
}

/// A cell as (clock index, cycles index, pipeline-mode index) into the
/// sorted axes.
type Cell = (usize, usize, usize);

struct Driver<'a, F> {
    clocks: Vec<u64>,
    cycles: Vec<u32>,
    modes: Vec<Option<u32>>,
    prefix: &'a str,
    build: F,
    /// The objective space whose plane steers staircase extraction, gap
    /// measurement, and candidate windowing.
    space: ObjectiveSpace,
    /// Cells already settled — evaluated, skipped as infeasible, or pruned
    /// — and therefore never to be submitted again.
    known: HashSet<Cell>,
    rows: Vec<DseRow>,
    row_cells: Vec<Cell>,
    skipped: Vec<(String, String)>,
    pruned: usize,
}

impl<F: FnMut(&SweepCell) -> Design> Driver<'_, F> {
    fn sweep_cell(&self, cell: Cell) -> SweepCell {
        SweepCell {
            clock_ps: self.clocks[cell.0],
            cycles: self.cycles[cell.1],
            pipeline_ii: self.modes[cell.2],
        }
    }

    /// Exact item time of a (possibly unevaluated) cell — closed-form, per
    /// `core::dse`.
    fn cell_item_time_ps(&self, cell: Cell) -> f64 {
        let sc = self.sweep_cell(cell);
        grid_item_time_ps(sc.clock_ps, sc.pipeline_ii.unwrap_or(sc.cycles).max(1))
    }

    /// Submits `cells` (deterministically ordered by the caller) and
    /// integrates rows/skips back into the cell map.
    fn evaluate_cells(&mut self, eval: &dyn Evaluator, cells: &[Cell]) -> Result<()> {
        let points: Vec<DsePoint> = cells
            .iter()
            .map(|&c| {
                let sc = self.sweep_cell(c);
                DsePoint::grid(
                    self.prefix,
                    (self.build)(&sc),
                    sc.clock_ps,
                    sc.cycles,
                    sc.pipeline_ii,
                )
            })
            .collect();
        let result = eval.evaluate_points(&points)?;
        let mut row_it = result.rows.into_iter();
        let mut skip_it = result.skipped.into_iter().peekable();
        for (p, &cell) in points.iter().zip(cells) {
            self.known.insert(cell);
            if skip_it.peek().is_some_and(|(n, _)| *n == p.name) {
                let entry = skip_it.next().expect("peeked skip entry");
                self.skipped.push(entry);
            } else {
                let row = row_it.next().expect("a row for every unskipped point");
                self.row_cells.push(cell);
                self.rows.push(row);
            }
        }
        Ok(())
    }

    /// The current front as (row index, cell, objectives), in the
    /// deterministic pareto order (area ascending).
    fn front(&self) -> Vec<(usize, Cell, Objectives)> {
        pareto_indices(&self.rows)
            .into_iter()
            .map(|i| (i, self.row_cells[i], objectives(&self.rows[i])))
            .collect()
    }

    /// The tradeoff staircase in the selected space's plane: rows
    /// non-dominated when only the plane's two axes count, sorted by the
    /// primary axis improving (area ascending, latency strictly descending
    /// under the default space).
    ///
    /// Gap measurement runs on this projection, not the full
    /// four-objective front: with every axis in play most grid cells are
    /// incomparable, the "front" approaches the whole grid, and
    /// primary-adjacent front points can sit anywhere along the secondary
    /// axis — gaps would never converge and refinement would degenerate
    /// into an exhaustive sweep. The staircase is the two-axis tradeoff
    /// curve the refinement is promised to resolve; the reported front
    /// stays the full four-objective one.
    fn staircase(&self) -> Vec<(usize, Cell, Objectives)> {
        staircase_indices_in(&self.space, &self.rows)
            .into_iter()
            .map(|i| (i, self.row_cells[i], objectives(&self.rows[i])))
            .collect()
    }

    /// The exact, closed-form value of a (possibly unevaluated) grid cell
    /// on `axis`, when the axis has one: latency and throughput are pure
    /// functions of the cell's coordinates; area and power need an HLS
    /// run.
    fn exact_cell_value(&self, cell: Cell, axis: Objective) -> Option<f64> {
        match axis {
            Objective::LatencyPs => Some(self.cell_item_time_ps(cell)),
            Objective::Throughput => Some(1.0e6 / self.cell_item_time_ps(cell)),
            Objective::Area | Objective::PowerTotal => None,
        }
    }

    /// Plans one refinement round: the widest normalized gap, the
    /// candidate cells worth evaluating (sorted by cell index), and how
    /// many candidates the optimistic-bound prune discarded.
    ///
    /// Each wide staircase gap proposes, in escalation order (a gap only
    /// spends cells from the cheapest family that still has fresh ones),
    /// three candidate families:
    ///
    /// * **midpoints** of the endpoints' index rectangle (both roundings —
    ///   with floor-only, index-adjacent endpoints collapse onto an
    ///   endpoint and refinement stalls with the gap still wide),
    /// * the rectangle's **cross corners** `(ca.clock, cb.cycles)` /
    ///   `(cb.clock, ca.cycles)` — for index-adjacent pairs the midpoints
    ///   degenerate and the corners are the only interior structure left,
    /// * the **axis neighbors** (±1 per axis) of both endpoints — gaps
    ///   whose dominating cells sit just outside the endpoints' rectangle
    ///   (a front point produced by a dominated seed neighborhood) are
    ///   reachable by no bisection; densifying around the gap's endpoints
    ///   is what lets the front converge to the exhaustive one.
    ///
    /// Only interior midpoints are eligible for the optimistic-bound prune:
    /// the monotone-interpolation bound brackets cells *between* the two
    /// evaluated endpoints, not corners or outward neighbors.
    fn plan(
        &mut self,
        stairs: &[(usize, Cell, Objectives)],
        gap_tol: f64,
    ) -> (f64, Vec<Cell>, usize) {
        let ranges = self.space.plane_ranges(stairs.iter().map(|(_, _, o)| o));
        let (primary, secondary) = self.space.plane();
        // The plane axes with closed-form cell values (latency/throughput),
        // paired with their normalization range: these are the axes gap
        // windows can be checked on without evaluation. An area/power
        // plane has none, and windowing simply admits every candidate.
        // (The two plane axes are distinct by construction: spaces reject
        // duplicates and refinement rejects single-axis spaces.)
        let exact_axes: Vec<(Objective, f64)> = [(primary, ranges.0), (secondary, ranges.1)]
            .into_iter()
            .filter(|(a, _)| matches!(a, Objective::LatencyPs | Objective::Throughput))
            .collect();
        // Dominators for the optimistic-bound prune: the full
        // four-objective front (staircase neighbors can never dominate an
        // interior cell's optimistic corner, but a front point better on
        // an axis outside the plane can).
        let full_front = self.front();
        let mut max_gap = 0.0f64;
        let mut candidates: Vec<Cell> = Vec::new();
        let mut pending: HashSet<Cell> = HashSet::new();
        let mut pruned_now = 0usize;
        for pair in stairs.windows(2) {
            let (_, ca, oa) = pair[0];
            let (_, cb, ob) = pair[1];
            let gap = self.space.plane_gap(&oa, &ob, ranges);
            max_gap = max_gap.max(gap);
            if gap <= gap_tol {
                continue;
            }
            // The pipeline axis is categorical: no midpoint, try both
            // endpoints' modes at every proposed (clock, cycles).
            let modes = if ca.2 == cb.2 {
                vec![ca.2]
            } else {
                vec![ca.2, cb.2]
            };
            let (lo_c, hi_c) = (ca.0.min(cb.0), ca.0.max(cb.0));
            let (lo_l, hi_l) = (ca.1.min(cb.1), ca.1.max(cb.1));
            // Candidate families in escalation order; a gap only spends
            // cells from the cheapest family that still has fresh ones.
            let mids: Vec<(Cell, bool)> = modes
                .iter()
                .flat_map(|&mode| {
                    [midpoint(lo_c, hi_c), midpoint_up(lo_c, hi_c)]
                        .into_iter()
                        .flat_map(move |mc| {
                            [midpoint(lo_l, hi_l), midpoint_up(lo_l, hi_l)]
                                .into_iter()
                                .map(move |ml| ((mc, ml, mode), true))
                        })
                })
                .collect();
            let corners: Vec<(Cell, bool)> = modes
                .iter()
                .flat_map(|&mode| [((ca.0, cb.1, mode), false), ((cb.0, ca.1, mode), false)])
                .collect();
            let neighbors: Vec<(Cell, bool)> = modes
                .iter()
                .flat_map(|&mode| {
                    [ca, cb].into_iter().flat_map(move |(c, l, _)| {
                        [
                            (c.wrapping_sub(1), l),
                            (c + 1, l),
                            (c, l.wrapping_sub(1)),
                            (c, l + 1),
                        ]
                        .into_iter()
                        .map(move |(nc, nl)| ((nc, nl, mode), false))
                    })
                })
                .collect();
            // A candidate can only resolve *this* gap if its exact,
            // closed-form value on each exact plane axis lands inside the
            // gap's interval on that axis (± the tolerance): anything
            // outside belongs to another pair's territory and would be
            // proposed there if useful.
            let windows: Vec<(Objective, f64, f64)> = exact_axes
                .iter()
                .map(|&(axis, range)| {
                    let (va, vb) = (axis.value(&oa), axis.value(&ob));
                    let tol = gap_tol.max(0.05) * range;
                    (axis, va.min(vb) - tol, va.max(vb) + tol)
                })
                .collect();
            for family in [mids, corners, neighbors] {
                let mut contributed = false;
                for (cell, prunable) in family {
                    if cell == ca
                        || cell == cb
                        || cell.0 >= self.clocks.len()
                        || cell.1 >= self.cycles.len()
                        || self.known.contains(&cell)
                    {
                        continue;
                    }
                    // A cell another gap already queued this round counts
                    // as this gap's contribution too — escalating past it
                    // would submit costlier families for a gap that is
                    // already being refined.
                    if pending.contains(&cell) {
                        contributed = true;
                        continue;
                    }
                    let outside = windows.iter().any(|&(axis, lo, hi)| {
                        let v = self
                            .exact_cell_value(cell, axis)
                            .expect("windowed axes are closed-form");
                        v < lo || v > hi
                    });
                    if outside {
                        continue;
                    }
                    if prunable && self.provably_dominated(cell, &oa, &ob, &full_front) {
                        self.known.insert(cell);
                        self.pruned += 1;
                        pruned_now += 1;
                        continue;
                    }
                    candidates.push(cell);
                    pending.insert(cell);
                    contributed = true;
                }
                if contributed {
                    break;
                }
            }
        }
        candidates.sort_unstable();
        (max_gap, candidates, pruned_now)
    }

    /// Proposes the axis neighborhood (±1 per numeric axis, every pipeline
    /// mode, including the cell's own coordinates under other modes) of
    /// each staircase point.
    ///
    /// This is the escape hatch for planes whose staircase collapses to a
    /// single point: when both plane axes are evaluated quantities
    /// (area/power) and strongly correlated, the seed's non-dominated set
    /// can be one corner cell even though the true plane front holds
    /// more — and with no gap to bisect, the only signal left is local
    /// densification around that argmin corner. Known cells are never
    /// re-proposed, so the walk terminates once the neighborhood (or the
    /// grid) is exhausted. The caller only takes this path for planes
    /// without a closed-form axis: a latency-bearing plane's seed corners
    /// already span the exact axis, and its one-point staircase keeps the
    /// pre-redesign early stop instead (default-space bit-identity).
    fn plan_densify(&self, stairs: &[(usize, Cell, Objectives)]) -> Vec<Cell> {
        let mut out: Vec<Cell> = Vec::new();
        for &(_, (c, l, _), _) in stairs {
            for mi in 0..self.modes.len() {
                let neighborhood = [
                    (c.wrapping_sub(1), l),
                    (c + 1, l),
                    (c, l.wrapping_sub(1)),
                    (c, l + 1),
                    (c, l),
                ];
                for (nc, nl) in neighborhood {
                    let cell = (nc, nl, mi);
                    if nc < self.clocks.len()
                        && nl < self.cycles.len()
                        && !self.known.contains(&cell)
                        && !out.contains(&cell)
                    {
                        out.push(cell);
                    }
                }
            }
        }
        out.sort_unstable();
        out
    }

    /// The optimistic-bound prune: latency/throughput of a grid cell are
    /// exact without evaluation, and area/power are bounded below by the
    /// better of the two bracketing front points (monotone-interpolation
    /// bound — scheduling with a budget between two evaluated budgets does
    /// not beat both on area/power). If even that corner is dominated by a
    /// front point, evaluating the cell cannot change the front.
    ///
    /// The check deliberately runs in the **full** four-objective space
    /// whatever plane steers the run: full-space dominance implies the
    /// dominator is no worse on *every* axis, so a pruned cell can neither
    /// join the reported four-objective front nor strictly improve any
    /// plane's staircase — sound in every [`ObjectiveSpace`]. (Pruning
    /// in-plane would discard cells that win on an unselected axis, and
    /// would make the default space diverge from the pre-redesign
    /// behavior.)
    fn provably_dominated(
        &self,
        cell: Cell,
        oa: &Objectives,
        ob: &Objectives,
        front: &[(usize, Cell, Objectives)],
    ) -> bool {
        let item_time = self.cell_item_time_ps(cell);
        let optimistic = Objectives {
            area: oa.area.min(ob.area),
            latency_ps: item_time,
            power: oa.power.min(ob.power),
            throughput: 1.0e6 / item_time,
        };
        if !optimistic.is_finite() {
            return false;
        }
        front.iter().any(|(_, _, of)| dominates(of, &optimistic))
    }
}

/// Overflow-free index midpoint, rounding down.
fn midpoint(a: usize, b: usize) -> usize {
    a.min(b) + (a.max(b) - a.min(b)) / 2
}

/// Overflow-free index midpoint, rounding up.
fn midpoint_up(a: usize, b: usize) -> usize {
    a.min(b) + (a.max(b) - a.min(b)).div_ceil(2)
}

/// Seed indices for one axis: first, middle, last (deduped).
fn seed_indices(len: usize) -> Vec<usize> {
    let mut idx = vec![0, len / 2, len.saturating_sub(1)];
    idx.sort_unstable();
    idx.dedup();
    idx.retain(|&i| i < len);
    idx
}

/// Adaptively refines the Pareto front of `grid` (see the module docs for
/// the algorithm). Every evaluated cell is a cell of `grid`, so the result
/// front is a subset of the exhaustive sweep's rows, reached with —
/// typically far — fewer evaluations.
///
/// # Errors
///
/// [`Error::Capacity`] when the grid's cell count overflows `usize`;
/// otherwise propagates the evaluator's scheduling failures (use a
/// skip-infeasible evaluator to explore grids with infeasible corners).
pub fn refine<F>(
    eval: &dyn Evaluator,
    grid: &SweepGrid,
    prefix: &str,
    build: F,
    opts: &RefineOptions,
) -> Result<RefineResult>
where
    F: FnMut(&SweepCell) -> Design,
{
    refine_with_progress(eval, grid, prefix, build, opts, |_| {})
}

/// [`refine`], reporting each round's [`RoundTrace`] to `observe` as soon
/// as the round's rows are integrated (the seed round included). This is
/// the hook the exploration server streams per-round progress events from;
/// the trace passed to `observe` is exactly the entry that ends up in
/// [`RefineResult::trace`].
///
/// # Errors
///
/// As [`refine`].
pub fn refine_with_progress<F>(
    eval: &dyn Evaluator,
    grid: &SweepGrid,
    prefix: &str,
    build: F,
    opts: &RefineOptions,
    mut observe: impl FnMut(&RoundTrace),
) -> Result<RefineResult>
where
    F: FnMut(&SweepCell) -> Design,
{
    // Refinement steers a two-axis plane: with fewer axes there is no
    // staircase and no gap, so every round would take the densification
    // path with `gap_tol` never consulted — an unbounded hill walk dressed
    // up as convergence. Reject up front, on every surface (library, CLI,
    // wire all arrive here).
    if opts.objectives.axes().len() < 2 {
        return Err(Error::Interp(format!(
            "adaptive refinement steers a two-axis objective plane; `{}` has only one axis \
             (pick two, e.g. `area,power`)",
            opts.objectives
        )));
    }
    let gap_tol = if opts.gap_tol.is_finite() && opts.gap_tol >= 0.0 {
        opts.gap_tol
    } else {
        0.0
    };
    // Sorted, deduplicated numeric axes make index bisection meaningful
    // (and keep duplicate axis entries from double-evaluating cells).
    let mut clocks: Vec<u64> = grid.clock_axis().to_vec();
    clocks.sort_unstable();
    clocks.dedup();
    let mut cycles: Vec<u32> = grid.cycles_axis().to_vec();
    cycles.sort_unstable();
    cycles.dedup();
    let mut modes: Vec<Option<u32>> = Vec::new();
    for &m in grid.pipeline_axis() {
        if !modes.contains(&m) {
            modes.push(m);
        }
    }

    // The grid the refinement actually explores (and that `grid_cells`
    // reports) is the deduplicated one — duplicate axis entries name the
    // same cells, and counting them would overstate the exhaustive
    // denominator every evaluated/total ratio is judged against.
    let Some(grid_cells) = clocks
        .len()
        .checked_mul(cycles.len())
        .and_then(|p| p.checked_mul(modes.len()))
    else {
        return Err(Error::Capacity(
            "adaptive refinement grid overflows the machine's address space".into(),
        ));
    };

    let mut driver = Driver {
        clocks,
        cycles,
        modes,
        prefix,
        build,
        space: opts.objectives.clone(),
        known: HashSet::new(),
        rows: Vec::new(),
        row_cells: Vec::new(),
        skipped: Vec::new(),
        pruned: 0,
    };
    if driver.clocks.is_empty() || driver.cycles.is_empty() || driver.modes.is_empty() {
        return Ok(RefineResult {
            rows: Vec::new(),
            skipped: Vec::new(),
            front: Vec::new(),
            objectives: opts.objectives.clone(),
            trace: Vec::new(),
            evaluated: 0,
            pruned: 0,
            grid_cells,
        });
    }

    // Seed: axis corners and midpoints, every pipeline mode — plus any
    // warm-start cells that map onto this grid (appended after the
    // geometric seed so a warm start never changes which cells a cold seed
    // evaluates, only adds to them).
    let mut seed: Vec<Cell> = Vec::new();
    for &ci in &seed_indices(driver.clocks.len()) {
        for &li in &seed_indices(driver.cycles.len()) {
            for mi in 0..driver.modes.len() {
                seed.push((ci, li, mi));
            }
        }
    }
    for w in &opts.warm_start {
        let found = (
            driver.clocks.iter().position(|&c| c == w.clock_ps),
            driver.cycles.iter().position(|&c| c == w.cycles),
            driver.modes.iter().position(|&m| m == w.pipeline_ii),
        );
        if let (Some(ci), Some(li), Some(mi)) = found {
            let cell = (ci, li, mi);
            if !seed.contains(&cell) {
                seed.push(cell);
            }
        }
    }
    if opts.budget > 0 {
        seed.truncate(opts.budget);
    }
    driver.evaluate_cells(eval, &seed)?;
    let mut trace = vec![RoundTrace {
        round: 0,
        new_points: seed.len(),
        front_size: driver.front().len(),
        max_gap: 0.0,
        pruned: 0,
    }];
    observe(&trace[0]);

    for round in 1..=opts.max_rounds {
        let stairs = driver.staircase();
        if stairs.is_empty() {
            break;
        }
        let (max_gap, mut candidates, pruned_now) = if stairs.len() < 2 {
            // A single-point staircase has no gap to bisect. For planes
            // with a closed-form axis (latency/throughput) the seed's
            // corner cells already span that axis, so a one-point
            // staircase is a genuinely converged corner — stop, exactly
            // as the pre-redesign driver did (this keeps the default
            // (area, latency) plane bit-identical to it). Planes whose
            // axes are both evaluated quantities get no such guarantee;
            // densify the lone point's axis neighborhood instead (see
            // `plan_densify`). The gap is reported as 0.0, like the seed
            // round: there is none yet.
            let (p, s) = driver.space.plane();
            let plane_has_exact_axis = [p, s]
                .iter()
                .any(|a| matches!(a, Objective::LatencyPs | Objective::Throughput));
            if plane_has_exact_axis {
                break;
            }
            let candidates = driver.plan_densify(&stairs);
            if candidates.is_empty() {
                break;
            }
            (0.0, candidates, 0)
        } else {
            let planned = driver.plan(&stairs, gap_tol);
            if planned.0 <= gap_tol || planned.1.is_empty() {
                break;
            }
            planned
        };
        if opts.budget > 0 {
            let spent = driver.rows.len() + driver.skipped.len();
            let remaining = opts.budget.saturating_sub(spent);
            if remaining == 0 {
                break;
            }
            candidates.truncate(remaining);
        }
        driver.evaluate_cells(eval, &candidates)?;
        trace.push(RoundTrace {
            round,
            new_points: candidates.len(),
            front_size: driver.front().len(),
            max_gap,
            pruned: pruned_now,
        });
        observe(trace.last().expect("round trace just pushed"));
    }

    let front = driver
        .front()
        .into_iter()
        .map(|(i, _, _)| driver.rows[i].clone())
        .collect();
    let evaluated = driver.rows.len() + driver.skipped.len();
    Ok(RefineResult {
        rows: driver.rows,
        skipped: driver.skipped,
        front,
        objectives: opts.objectives.clone(),
        trace,
        evaluated,
        pruned: driver.pruned,
        grid_cells,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::EngineOptions;
    use adhls_ir::builder::DesignBuilder;
    use adhls_ir::OpKind;
    use adhls_reslib::tsmc90;

    /// Synthetic workload: a small multiply-add chain whose latency budget
    /// is baked in as soft states — cheap to schedule, real area/latency
    /// tradeoff (looser budgets downgrade resources).
    fn build_cell(cell: &SweepCell) -> Design {
        let mut b = DesignBuilder::new("syn");
        let x = b.input("x", 8);
        let y = b.input("y", 8);
        let m1 = b.binop(OpKind::Mul, x, y, 8);
        let m2 = b.binop(OpKind::Mul, m1, x, 8);
        let a = b.binop(OpKind::Add, m1, m2, 16);
        b.soft_waits(cell.cycles.saturating_sub(1));
        b.write("z", a);
        b.finish().unwrap()
    }

    fn grid(clocks: &[u64], cycles: &[u32]) -> SweepGrid {
        SweepGrid::new()
            .clocks_ps(clocks.iter().copied())
            .cycles(cycles.iter().copied())
    }

    fn engine(lib: &adhls_reslib::Library) -> Engine<'_> {
        Engine::with_options(
            lib,
            Default::default(),
            EngineOptions {
                skip_infeasible: true,
                ..Default::default()
            },
        )
    }

    #[test]
    fn tiny_grid_seed_is_the_whole_grid_and_front_is_exact() {
        // 3x3 axes: first/mid/last covers every index, so the adaptive
        // front must equal the exhaustive front bit for bit.
        let lib = tsmc90::library();
        let g = grid(&[1100, 1400, 1800], &[2, 4, 6]);
        let eng = engine(&lib);
        let r = refine(&eng, &g, "syn", build_cell, &RefineOptions::default()).unwrap();
        assert_eq!(r.evaluated, 9);
        assert_eq!(r.grid_cells, 9);
        let exhaustive = g.expand("syn", build_cell).unwrap();
        let ex_rows = engine(&lib).evaluate_points(&exhaustive).unwrap().rows;
        assert_eq!(r.front, crate::pareto::pareto_front(&ex_rows));
        assert_eq!(r.trace[0].round, 0);
        assert_eq!(r.trace[0].new_points, 9);
    }

    #[test]
    fn refined_cells_are_grid_cells_and_fewer_than_exhaustive() {
        let lib = tsmc90::library();
        let g = grid(&[1100, 1250, 1400, 1600, 1800, 2100], &[2, 3, 4, 5, 6]);
        let eng = engine(&lib);
        let r = refine(
            &eng,
            &g,
            "syn",
            build_cell,
            &RefineOptions {
                gap_tol: 0.25,
                ..Default::default()
            },
        )
        .unwrap();
        assert!(
            r.evaluated < r.grid_cells,
            "adaptive must beat exhaustive: {} vs {}",
            r.evaluated,
            r.grid_cells
        );
        // Every evaluated row is bit-identical to the exhaustive sweep's
        // row for the same cell (name match ⇒ full row match).
        let exhaustive = g.expand("syn", build_cell).unwrap();
        let ex_rows = engine(&lib).evaluate_points(&exhaustive).unwrap().rows;
        for row in &r.rows {
            let twin = ex_rows
                .iter()
                .find(|e| e.name == row.name)
                .unwrap_or_else(|| panic!("{} not a grid cell", row.name));
            assert_eq!(row, twin);
        }
        assert!(!r.front.is_empty());
    }

    #[test]
    fn budget_caps_evaluations() {
        let lib = tsmc90::library();
        let g = grid(&[1100, 1250, 1400, 1600, 1800, 2100], &[2, 3, 4, 5, 6]);
        let eng = engine(&lib);
        let r = refine(
            &eng,
            &g,
            "syn",
            build_cell,
            &RefineOptions {
                budget: 12,
                gap_tol: 0.0,
                ..Default::default()
            },
        )
        .unwrap();
        assert!(r.evaluated <= 12, "budget 12, spent {}", r.evaluated);
    }

    #[test]
    fn refinement_is_deterministic() {
        let lib = tsmc90::library();
        let g = grid(&[1100, 1250, 1400, 1600, 1800], &[2, 3, 4, 6]);
        let opts = RefineOptions {
            gap_tol: 0.1,
            ..Default::default()
        };
        let a = refine(&engine(&lib), &g, "syn", build_cell, &opts).unwrap();
        let b = refine(&engine(&lib), &g, "syn", build_cell, &opts).unwrap();
        assert_eq!(a, b, "same grid, same options, same everything");
    }

    #[test]
    fn empty_axes_refine_to_nothing() {
        let lib = tsmc90::library();
        let g = SweepGrid::new().clocks_ps([1100]);
        let r = refine(
            &engine(&lib),
            &g,
            "syn",
            build_cell,
            &RefineOptions::default(),
        )
        .unwrap();
        assert!(r.rows.is_empty());
        assert!(r.front.is_empty());
        assert!(r.trace.is_empty());
    }

    #[test]
    fn nonfinite_gap_tol_is_clamped_not_honored() {
        let lib = tsmc90::library();
        let g = grid(&[1100, 1400, 1800], &[2, 4, 6]);
        let r = refine(
            &engine(&lib),
            &g,
            "syn",
            build_cell,
            &RefineOptions {
                gap_tol: f64::NAN,
                ..Default::default()
            },
        )
        .unwrap();
        assert!(
            r.evaluated >= 9,
            "NaN tolerance must not stop refinement early"
        );
    }

    #[test]
    fn warm_start_cells_parse_export_documents_and_skip_foreign_names() {
        let json = r#"{"sweep": [], "front": [
            {"name":"syn-c1100-l2","a_slack":10},
            {"name":"D7","a_slack":11},
            {"name":"syn-c1400-l4-ii2","a_slack":12},
            {"name":"syn-c1100-l2","a_slack":10}
        ]}"#;
        let cells = warm_start_cells(json).unwrap();
        assert_eq!(
            cells,
            vec![
                SweepCell {
                    clock_ps: 1100,
                    cycles: 2,
                    pipeline_ii: None
                },
                SweepCell {
                    clock_ps: 1400,
                    cycles: 4,
                    pipeline_ii: Some(2)
                },
            ],
            "grid names map to cells, D7 and duplicates are dropped"
        );
        assert!(warm_start_cells("not json").is_err());
        assert!(warm_start_cells("{\"x\":1}").is_err());
    }

    #[test]
    fn warm_start_extends_the_seed_and_preserves_the_front() {
        let lib = tsmc90::library();
        let g = grid(&[1100, 1250, 1400, 1600, 1800, 2100], &[2, 3, 4, 5, 6]);
        let opts = RefineOptions {
            gap_tol: 0.25,
            ..Default::default()
        };
        let cold = refine(&engine(&lib), &g, "syn", build_cell, &opts).unwrap();
        // Warm-start from the cold run's front (as if re-imported from its
        // exported JSON): the warm seed contains every front cell, and the
        // refined front can only be at least as good — here, identical.
        let warm_cells: Vec<SweepCell> = cold
            .front
            .iter()
            .map(|r| {
                let (clock_ps, cycles, pipeline_ii) =
                    adhls_core::dse::DsePoint::parse_grid_name(&r.name).unwrap();
                SweepCell {
                    clock_ps,
                    cycles,
                    pipeline_ii,
                }
            })
            .collect();
        let warm = refine(
            &engine(&lib),
            &g,
            "syn",
            build_cell,
            &RefineOptions {
                warm_start: warm_cells.clone(),
                ..opts
            },
        )
        .unwrap();
        assert!(
            warm.trace[0].new_points >= cold.trace[0].new_points,
            "warm seed is a superset of the cold seed"
        );
        for c in &warm_cells {
            let name =
                adhls_core::dse::DsePoint::grid_name("syn", c.clock_ps, c.cycles, c.pipeline_ii);
            assert!(
                warm.rows.iter().any(|r| r.name == name),
                "warm cell {name} was evaluated in the warm run"
            );
        }
        assert_eq!(warm.front, cold.front, "same grid, same converged front");
        // Cells that name no cell of this grid are ignored, not errors.
        let stray = refine(
            &engine(&lib),
            &g,
            "syn",
            build_cell,
            &RefineOptions {
                warm_start: vec![SweepCell {
                    clock_ps: 99_999,
                    cycles: 77,
                    pipeline_ii: Some(3),
                }],
                gap_tol: 0.25,
                ..Default::default()
            },
        )
        .unwrap();
        assert_eq!(stray.trace[0].new_points, cold.trace[0].new_points);
    }

    #[test]
    fn single_axis_spaces_are_rejected_not_hill_walked() {
        let lib = tsmc90::library();
        let g = grid(&[1100, 1400, 1800], &[2, 4, 6]);
        let err = refine(
            &engine(&lib),
            &g,
            "syn",
            build_cell,
            &RefineOptions {
                objectives: ObjectiveSpace::new([Objective::PowerTotal]).unwrap(),
                ..Default::default()
            },
        )
        .unwrap_err();
        assert!(err.to_string().contains("two-axis"), "{err}");
    }

    #[test]
    fn warm_start_round_trips_the_exported_objective_space() {
        let json = r#"{"objectives":["area","power"],"sweep":[],
            "front":[{"name":"syn-c1100-l2","a_slack":10}]}"#;
        let ws = WarmStart::parse(json).unwrap();
        assert_eq!(
            ws.objectives,
            Some(ObjectiveSpace::parse("area,power").unwrap())
        );
        assert_eq!(ws.cells.len(), 1);
        // Pre-redesign exports carry no objectives field: None, not an
        // error — and the cells still load.
        let legacy = WarmStart::parse(r#"{"front":[{"name":"syn-c1100-l2"}]}"#).unwrap();
        assert_eq!(legacy.objectives, None);
        assert_eq!(legacy.cells, ws.cells);
        // A recorded-but-bogus space is an error, not a silent default.
        assert!(WarmStart::parse(r#"{"objectives":["warp"],"front":[]}"#).is_err());
        assert!(WarmStart::parse(r#"{"objectives":7,"front":[]}"#).is_err());
    }

    #[test]
    fn power_plane_refinement_converges_and_records_its_space() {
        let lib = tsmc90::library();
        let g = grid(&[1100, 1250, 1400, 1600, 1800, 2100], &[2, 3, 4, 5, 6]);
        let space = ObjectiveSpace::parse("area,power").unwrap();
        let r = refine(
            &engine(&lib),
            &g,
            "syn",
            build_cell,
            &RefineOptions {
                gap_tol: 0.2,
                objectives: space.clone(),
                ..Default::default()
            },
        )
        .unwrap();
        assert_eq!(r.objectives, space);
        assert!(!r.front.is_empty());
        assert!(r.evaluated <= r.grid_cells, "never beyond exhaustive");
        assert!(
            !crate::pareto::tradeoff_staircase_in(&space, &r.rows).is_empty(),
            "the steering plane has a staircase to converge on"
        );
        // Every evaluated cell is still a cell of the exhaustive grid.
        let exhaustive = g.expand("syn", build_cell).unwrap();
        let ex_rows = engine(&lib).evaluate_points(&exhaustive).unwrap().rows;
        for row in &r.rows {
            assert!(
                ex_rows.iter().any(|e| e == row),
                "{} diverged from the exhaustive sweep",
                row.name
            );
        }
        // The default-space result is a different run (different steering
        // plane), but both report full-objective fronts over their rows.
        let default_run = refine(
            &engine(&lib),
            &g,
            "syn",
            build_cell,
            &RefineOptions {
                gap_tol: 0.2,
                ..Default::default()
            },
        )
        .unwrap();
        assert_eq!(default_run.objectives, ObjectiveSpace::default());
    }

    #[test]
    fn progress_observer_sees_every_trace_entry() {
        let lib = tsmc90::library();
        let g = grid(&[1100, 1250, 1400, 1600, 1800], &[2, 3, 4, 6]);
        let mut seen = Vec::new();
        let r = refine_with_progress(
            &engine(&lib),
            &g,
            "syn",
            build_cell,
            &RefineOptions {
                gap_tol: 0.1,
                ..Default::default()
            },
            |t| seen.push(t.clone()),
        )
        .unwrap();
        assert_eq!(seen, r.trace, "streamed traces match the result trace");
    }

    #[test]
    fn duplicate_axis_values_do_not_double_evaluate() {
        let lib = tsmc90::library();
        let g = grid(&[1400, 1100, 1400, 1100], &[4, 2, 4]);
        let r = refine(
            &engine(&lib),
            &g,
            "syn",
            build_cell,
            &RefineOptions::default(),
        )
        .unwrap();
        // Deduped axes: 2 clocks x 2 cycles = 4 distinct cells at most,
        // and the reported exhaustive denominator matches the deduped
        // grid, not the raw duplicate-laden axes.
        assert_eq!(r.grid_cells, 4, "grid_cells must count distinct cells");
        assert!(
            r.evaluated <= 4,
            "deduped grid has 4 cells, saw {}",
            r.evaluated
        );
        let mut names: Vec<&str> = r.rows.iter().map(|x| x.name.as_str()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), r.rows.len(), "duplicate rows evaluated");
    }
}
