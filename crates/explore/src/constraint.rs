//! Objective constraints: bound one axis of an [`ObjectiveSpace`](crate::pareto::ObjectiveSpace) and
//! explore only the feasible slice.
//!
//! The paper's core use case — *"the cheapest design that still meets a
//! delay budget"* — is a constrained reduction over the tradeoff plane,
//! the standard formulation in the multi-objective DSE literature: fix a
//! budget on one axis, optimize the rest. A [`Constraint`] is one such
//! bound (`axis ≤ bound` or `axis ≥ bound`); every exploration surface
//! accepts a list of them:
//!
//! * [`crate::pareto::pareto_front_in_constrained`] /
//!   [`crate::pareto::tradeoff_staircase_in_constrained`] filter
//!   infeasible rows *before* projection, so the constrained front is the
//!   non-dominated set of the feasible region,
//! * [`crate::refine::RefineOptions::constraints`] clips adaptive
//!   refinement to the feasible region — candidate windows shrink to the
//!   feasible interval on closed-form axes, and the optimistic-bound prune
//!   also discards cells that provably cannot satisfy the constraints,
//! * the serve protocol's `constraints` request field and the CLI's
//!   repeatable `--constraint` flag parse through the same
//!   [`Constraint::parse`] grammar, and exports record the constraints
//!   next to `objectives` so [`crate::refine::WarmStart`] can surface the
//!   provenance.
//!
//! A constraint is only accepted when its axis is *selected by the active
//! objective space* ([`validate_constraints`]): bounding an axis the space
//! ignores would silently change which rows survive without the space
//! ever seeing that axis — almost certainly a typo'd request.
//!
//! For bounds in each axis's *improving* direction (`≤` on minimized
//! axes, `≥` on throughput) the feasible slice commutes with front
//! extraction: an infeasible point can never dominate a feasible one, so
//! filtering then projecting equals projecting then filtering. That
//! equality is what lets constrained refinement reuse every unconstrained
//! invariant (and what the proptests pin).

use crate::pareto::{Objective, Objectives, Sense};
use adhls_core::json::Value;
use std::fmt;

#[cfg(test)]
use crate::pareto::ObjectiveSpace;

/// Which side of the bound is feasible.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ConstraintOp {
    /// `axis <= bound` — feasible at or below the bound.
    Le,
    /// `axis >= bound` — feasible at or above the bound.
    Ge,
}

impl ConstraintOp {
    /// The operator's surface spelling (`<=` / `>=`).
    #[must_use]
    pub fn symbol(self) -> &'static str {
        match self {
            ConstraintOp::Le => "<=",
            ConstraintOp::Ge => ">=",
        }
    }
}

/// One objective bound: `axis ≤ bound` or `axis ≥ bound`.
///
/// The grammar is shared by every surface — CLI `--constraint`, the serve
/// protocol's `constraints` field, exported documents:
///
/// ```
/// use adhls_explore::constraint::{Constraint, ConstraintOp};
/// use adhls_explore::pareto::Objective;
///
/// let c = Constraint::parse("area<=1500").unwrap();
/// assert_eq!(c.axis, Objective::Area);
/// assert_eq!(c.op, ConstraintOp::Le);
/// assert_eq!(c.bound, 1500.0);
/// assert_eq!(c.to_string(), "area<=1500");
///
/// // Round-trips through its own Display form.
/// assert_eq!(Constraint::parse(&c.to_string()).unwrap(), c);
///
/// // Throughput is maximized, so its useful bound is a floor.
/// let t = Constraint::parse("throughput >= 250").unwrap();
/// assert_eq!(t.op, ConstraintOp::Ge);
///
/// // Unknown axes and non-finite bounds are errors, not silent defaults.
/// assert!(Constraint::parse("warp<=1").is_err());
/// assert!(Constraint::parse("area<=inf").is_err());
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Constraint {
    /// The bounded axis.
    pub axis: Objective,
    /// Which side of the bound is feasible.
    pub op: ConstraintOp,
    /// The bound itself. Always finite: a NaN bound would make every
    /// comparison false and silently drop all rows, and an infinite bound
    /// constrains nothing — both are rejected at parse/construction time.
    pub bound: f64,
}

impl fmt::Display for Constraint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}{}{}", self.axis.name(), self.op.symbol(), self.bound)
    }
}

impl Constraint {
    /// A constraint over `axis`, checked for a finite bound.
    ///
    /// # Errors
    ///
    /// A message when `bound` is NaN or infinite.
    pub fn new(axis: Objective, op: ConstraintOp, bound: f64) -> Result<Constraint, String> {
        if !bound.is_finite() {
            return Err(format!(
                "constraint bound on `{}` must be a finite number, got `{bound}`",
                axis.name()
            ));
        }
        Ok(Constraint { axis, op, bound })
    }

    /// Parses one constraint (`area<=1500`, `power >= 2.5`) — the one
    /// grammar behind CLI `--constraint` values, the serve protocol's
    /// `constraints` entries, and exported documents. Axis names accept
    /// the same aliases as [`Objective::parse`].
    ///
    /// # Errors
    ///
    /// A message naming the missing operator, the unknown axis, or the
    /// non-finite/unparseable bound.
    pub fn parse(s: &str) -> Result<Constraint, String> {
        let s = s.trim();
        let (op, at) = match (s.find("<="), s.find(">=")) {
            (Some(i), None) => (ConstraintOp::Le, i),
            (None, Some(i)) => (ConstraintOp::Ge, i),
            (Some(i), Some(j)) => {
                if i < j {
                    (ConstraintOp::Le, i)
                } else {
                    (ConstraintOp::Ge, j)
                }
            }
            (None, None) => {
                return Err(format!(
                    "constraint `{s}` needs `<=` or `>=` (e.g. `area<=1500`)"
                ))
            }
        };
        let axis_name = s[..at].trim();
        let axis = Objective::parse(axis_name).ok_or_else(|| {
            format!("constraint `{s}`: unknown axis `{axis_name}` (area | latency | power | throughput)")
        })?;
        let bound_str = s[at + 2..].trim();
        let bound: f64 = bound_str
            .parse()
            .map_err(|_| format!("constraint `{s}`: `{bound_str}` is not a number"))?;
        Constraint::new(axis, op, bound)
            .map_err(|_| format!("constraint `{s}`: the bound must be finite"))
    }

    /// True when `o` satisfies this constraint. The comparison is on the
    /// axis's raw value (not the minimize-mapped key), so `<=` and `>=`
    /// mean what they say on every axis.
    #[must_use]
    pub fn satisfied(&self, o: &Objectives) -> bool {
        self.satisfied_value(self.axis.value(o))
    }

    /// True when a raw value `v` of this constraint's axis satisfies the
    /// bound — the kernel behind [`Constraint::satisfied`], usable when
    /// only one axis value is known (e.g. a closed-form latency of an
    /// unevaluated grid cell).
    #[must_use]
    pub fn satisfied_value(&self, v: f64) -> bool {
        match self.op {
            ConstraintOp::Le => v <= self.bound,
            ConstraintOp::Ge => v >= self.bound,
        }
    }

    /// True when the bound points in the axis's *improving* direction —
    /// `<=` on a minimized axis, `>=` on a maximized one. Only improving
    /// bounds commute with front extraction (filter-then-project equals
    /// project-then-filter); the anti-improving kind is still honored by
    /// filtering, it just may keep rows off the constrained front that the
    /// unconstrained front contains.
    #[must_use]
    pub fn is_improving(&self) -> bool {
        matches!(
            (self.axis.sense(), self.op),
            (Sense::Minimize, ConstraintOp::Le) | (Sense::Maximize, ConstraintOp::Ge)
        )
    }
}

/// True when `o` satisfies every constraint in `cs` (trivially true for an
/// empty list — the unconstrained case).
#[must_use]
pub fn feasible(cs: &[Constraint], o: &Objectives) -> bool {
    cs.iter().all(|c| c.satisfied(o))
}

/// Checks every constraint's axis against the active objective space: a
/// bound on an axis the space does not select is rejected (it would filter
/// rows on evidence the space never weighs — almost certainly a mistaken
/// request). `axes` is typically one space's [`crate::pareto::ObjectiveSpace::axes`]; for
/// multi-plane refinement pass the union of the planes' axes.
///
/// # Errors
///
/// A message naming the offending constraint and the selected axes.
pub fn validate_constraints(cs: &[Constraint], axes: &[Objective]) -> Result<(), String> {
    for c in cs {
        if !axes.contains(&c.axis) {
            let names: Vec<&str> = axes.iter().map(|a| a.name()).collect();
            return Err(format!(
                "constraint `{c}` bounds `{}`, which the active objective space ({}) \
                 does not select",
                c.axis.name(),
                names.join(",")
            ));
        }
    }
    Ok(())
}

/// Parses a list of constraint strings — the serve protocol's
/// `constraints` array form and the repeated CLI `--constraint` values.
/// Duplicate *identical* constraints are collapsed; two different bounds
/// on the same axis are both kept (a band like `area>=a, area<=b` is
/// meaningful).
///
/// # Errors
///
/// As [`Constraint::parse`], for the first offending entry.
pub fn parse_constraints<S: AsRef<str>>(entries: &[S]) -> Result<Vec<Constraint>, String> {
    let mut out: Vec<Constraint> = Vec::new();
    for e in entries {
        let c = Constraint::parse(e.as_ref())?;
        if !out.contains(&c) {
            out.push(c);
        }
    }
    Ok(out)
}

/// Parses a `constraints` JSON value as it appears on every JSON surface
/// (the serve protocol's request field, exported front/refine documents):
/// an array of constraint strings, or one comma-separated string. Absent
/// (`None`) and `null` mean "no constraints". One definition, so the wire
/// and warm-start parsers cannot drift apart (the mirror of
/// [`crate::pareto::ObjectiveSpace::from_json`]).
///
/// # Errors
///
/// A message naming the bad shape or entry (callers prefix the field
/// context).
pub fn constraints_from_json(value: Option<&Value>) -> Result<Vec<Constraint>, String> {
    match value {
        None | Some(Value::Null) => Ok(Vec::new()),
        Some(Value::Str(s)) => parse_constraints(&s.split(',').collect::<Vec<_>>()),
        Some(Value::Arr(entries)) => {
            let entries = entries
                .iter()
                .map(|e| e.as_str().ok_or("entries must be constraint strings"))
                .collect::<Result<Vec<&str>, &str>>()?;
            parse_constraints(&entries)
        }
        Some(_) => Err("must be an array of constraint strings".into()),
    }
}

/// Renders constraints as the JSON string array every exporting surface
/// embeds (`["area<=1500","power<=40"]`) — the shape
/// [`constraints_from_json`] reads back.
#[must_use]
pub fn constraints_to_json(cs: &[Constraint]) -> String {
    let mut out = String::from("[");
    for (i, c) in cs.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push('"');
        out.push_str(&c.to_string());
        out.push('"');
    }
    out.push(']');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn obj(area: f64, latency_ps: f64, power: f64, throughput: f64) -> Objectives {
        Objectives {
            area,
            latency_ps,
            power,
            throughput,
        }
    }

    #[test]
    fn parse_accepts_both_ops_whitespace_and_aliases() {
        let c = Constraint::parse("  power >= 2.5 ").unwrap();
        assert_eq!(c.axis, Objective::PowerTotal);
        assert_eq!(c.op, ConstraintOp::Ge);
        assert_eq!(c.bound, 2.5);
        // Exporter column aliases work, as in ObjectiveSpace::parse.
        let c = Constraint::parse("a_slack<=900.5").unwrap();
        assert_eq!(c.axis, Objective::Area);
        assert_eq!(c.bound, 900.5);
        let c = Constraint::parse("latency_ps<=4000").unwrap();
        assert_eq!(c.axis, Objective::LatencyPs);
    }

    #[test]
    fn parse_names_every_failure_mode() {
        for (bad, needle) in [
            ("area=1500", "<="),
            ("warp<=1", "warp"),
            ("area<=fast", "fast"),
            ("area<=NaN", "finite"),
            ("area<=inf", "finite"),
            ("<=5", "unknown axis"),
        ] {
            let err = Constraint::parse(bad).unwrap_err();
            assert!(err.contains(needle), "{bad}: {err}");
        }
    }

    #[test]
    fn satisfied_compares_raw_values() {
        let o = obj(100.0, 2000.0, 10.0, 500.0);
        assert!(Constraint::parse("area<=100").unwrap().satisfied(&o));
        assert!(!Constraint::parse("area<=99").unwrap().satisfied(&o));
        assert!(Constraint::parse("throughput>=500").unwrap().satisfied(&o));
        assert!(!Constraint::parse("throughput>=501").unwrap().satisfied(&o));
        assert!(feasible(
            &[
                Constraint::parse("area<=100").unwrap(),
                Constraint::parse("power<=10").unwrap(),
            ],
            &o
        ));
        assert!(!feasible(
            &[
                Constraint::parse("area<=100").unwrap(),
                Constraint::parse("power<=9").unwrap(),
            ],
            &o
        ));
        assert!(feasible(&[], &o), "no constraints = everything feasible");
    }

    #[test]
    fn improving_direction_follows_the_axis_sense() {
        assert!(Constraint::parse("area<=1").unwrap().is_improving());
        assert!(Constraint::parse("latency<=1").unwrap().is_improving());
        assert!(Constraint::parse("throughput>=1").unwrap().is_improving());
        assert!(!Constraint::parse("area>=1").unwrap().is_improving());
        assert!(!Constraint::parse("throughput<=1").unwrap().is_improving());
    }

    #[test]
    fn validation_rejects_axes_outside_the_space() {
        let space = ObjectiveSpace::parse("area,latency").unwrap();
        let ok = [Constraint::parse("area<=1").unwrap()];
        validate_constraints(&ok, space.axes()).unwrap();
        let bad = [Constraint::parse("power<=1").unwrap()];
        let err = validate_constraints(&bad, space.axes()).unwrap_err();
        assert!(
            err.contains("power") && err.contains("area,latency"),
            "{err}"
        );
        // The full space accepts every axis.
        validate_constraints(&bad, ObjectiveSpace::full().axes()).unwrap();
    }

    #[test]
    fn list_parsing_dedupes_identical_entries_but_keeps_bands() {
        let cs = parse_constraints(&["area<=5", "area<=5", "area>=1"]).unwrap();
        assert_eq!(cs.len(), 2);
        assert!(parse_constraints(&["area<=5", "warp<=1"]).is_err());
    }

    #[test]
    fn json_round_trips_array_string_and_null_forms() {
        let cs = parse_constraints(&["area<=1500", "power<=40"]).unwrap();
        let json = constraints_to_json(&cs);
        assert_eq!(json, "[\"area<=1500\",\"power<=40\"]");
        let doc = Value::parse(&json).unwrap();
        assert_eq!(constraints_from_json(Some(&doc)).unwrap(), cs);
        // Comma-string form, as on the CLI-adjacent surfaces.
        let s = Value::Str("area<=1500,power<=40".into());
        assert_eq!(constraints_from_json(Some(&s)).unwrap(), cs);
        assert!(constraints_from_json(None).unwrap().is_empty());
        assert!(constraints_from_json(Some(&Value::Null))
            .unwrap()
            .is_empty());
        // Bad shapes are errors.
        assert!(constraints_from_json(Some(&Value::Num(7.0))).is_err());
        assert!(constraints_from_json(Some(&Value::Arr(vec![Value::Num(7.0)]))).is_err());
    }
}
