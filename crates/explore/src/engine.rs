//! Work-stealing parallel sweep evaluator with a memoizing result cache.
//!
//! Workers pull point indices from a shared atomic counter (dynamic load
//! balancing — cheap points don't leave a core idle behind an expensive
//! one) and publish each row into its input slot, so the output order is
//! the input order no matter how the threads interleave. Every point's
//! result depends only on (design, library, options); combined with the
//! slot-per-point publication this makes parallel evaluation bit-identical
//! to serial evaluation.

use crate::fingerprint::{design_fingerprint, options_fingerprint, Fnv};
use adhls_core::dse::{DsePoint, DseRow};
use adhls_core::recover::{evaluate_mode_point, evaluate_mode_prepared};
use adhls_core::sched::HlsOptions;
use adhls_core::{PointMode, PreparedDesign};
use adhls_ir::{Design, Error, Result};
use adhls_reslib::Library;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

/// Number of independent cache shards (reduces lock contention).
const CACHE_SHARDS: usize = 16;

/// Named hit/miss counters — one shape for every cache surface (the
/// engine's [`ResultCache`], the pool's evicting cache) so call sites can't
/// transpose the two the way a bare `(u64, u64)` tuple silently allows.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct HitMiss {
    /// Lookups that avoided an evaluation. For the pool's evicting cache
    /// this includes coalesced in-flight waits — both served a cached run.
    pub hits: u64,
    /// Lookups that had to run the evaluator.
    pub misses: u64,
}

/// A sharded, thread-safe memo of evaluated (design, options) pairs.
#[derive(Debug, Default)]
pub struct ResultCache {
    shards: [Mutex<HashMap<u64, DseRow>>; CACHE_SHARDS],
    hits: AtomicU64,
    misses: AtomicU64,
}

impl ResultCache {
    fn shard(&self, key: u64) -> &Mutex<HashMap<u64, DseRow>> {
        &self.shards[(key % CACHE_SHARDS as u64) as usize]
    }

    /// Cached row for `key`, if any.
    #[must_use]
    pub fn get(&self, key: u64) -> Option<DseRow> {
        let row = self
            .shard(key)
            .lock()
            .expect("cache shard poisoned")
            .get(&key)
            .cloned();
        if row.is_some() {
            self.hits.fetch_add(1, Ordering::Relaxed);
        } else {
            self.misses.fetch_add(1, Ordering::Relaxed);
        }
        row
    }

    /// Stores a row under `key`.
    pub fn insert(&self, key: u64, row: DseRow) {
        self.shard(key)
            .lock()
            .expect("cache shard poisoned")
            .insert(key, row);
    }

    /// Hit/miss counters since construction.
    #[must_use]
    pub fn stats(&self) -> HitMiss {
        HitMiss {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
        }
    }

    /// Number of cached rows.
    #[must_use]
    pub fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.lock().expect("cache shard poisoned").len())
            .sum()
    }

    /// True when nothing is cached.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// A sharded cache of prepared phase-artifact prefixes, keyed by
/// [`design_fingerprint`] — the clock/flow/II-independent half of the
/// point key, so every cell of a sweep axis over one design (and every
/// serve request touching it) shares one [`PreparedDesign`].
///
/// Soundness: prefix artifacts are a pure function of `(design, library)`;
/// both the engine and the pool hold one library for their whole lifetime,
/// so the design fingerprint alone identifies the prefix. The satellite
/// proptests in `tests/incremental_equivalence.rs` pin the key contract
/// (insensitive to clock/flow/II/latency knobs, sensitive to structure).
///
/// Consults count `pipeline.prefix.{hit,miss}` and retained artifact bytes
/// move the `pipeline.prefix.bytes` gauge on the thread's registry —
/// observational only, like every other `pipeline.*` metric.
#[derive(Debug, Default)]
pub(crate) struct PrefixCache {
    shards: [Mutex<HashMap<u64, Arc<PreparedDesign>>>; CACHE_SHARDS],
}

impl PrefixCache {
    /// The prepared prefix for `design`, elaborating and inserting on miss.
    ///
    /// Concurrent first touches of one design may prepare twice; the first
    /// insert wins and both callers see the same artifacts thereafter (the
    /// preparation is a pure function, so the race is benign and the rows
    /// stay deterministic).
    pub(crate) fn get_or_prepare(
        &self,
        design: &Design,
        lib: &Library,
    ) -> Result<Arc<PreparedDesign>> {
        let key = design_fingerprint(design);
        let shard = &self.shards[(key % CACHE_SHARDS as u64) as usize];
        if let Some(prep) = shard.lock().expect("prefix shard poisoned").get(&key) {
            adhls_telemetry::counter_add("pipeline.prefix.hit", 1);
            return Ok(Arc::clone(prep));
        }
        adhls_telemetry::counter_add("pipeline.prefix.miss", 1);
        let prep = Arc::new(PreparedDesign::new(design, lib)?);
        let mut guard = shard.lock().expect("prefix shard poisoned");
        let entry = guard.entry(key).or_insert_with(|| {
            adhls_telemetry::gauge_add("pipeline.prefix.bytes", prep.approx_bytes() as i64);
            Arc::clone(&prep)
        });
        Ok(Arc::clone(entry))
    }
}

/// Memo key for one point under `base` options — the one shared definition
/// used by [`Engine`] and the persistent pool in [`crate::pool`].
///
/// The pipeline-II option is encoded as a separate tag word plus the raw
/// value: the old `ii + 1` trick both overflowed at `u32::MAX` (debug
/// panic) and, in release, wrapped `Some(u32::MAX)` onto the same word as
/// `None` — a silent key collision between a pipelined and a sequential
/// point.
///
/// The evaluation mode is part of the key (its one-byte
/// [`PointMode::cache_tag`]): full, recover, and auto rows are distinct
/// results for the same point, so they may never alias in any result
/// cache. The *prefix* cache deliberately stays mode-blind — elaboration
/// artifacts are identical across modes and recovery must never
/// re-elaborate (see
/// [`crate::fingerprint::prefix_options_fingerprint`]).
pub(crate) fn point_key(base: &HlsOptions, p: &DsePoint, mode: PointMode) -> u64 {
    let mut h = Fnv::default();
    h.u64(design_fingerprint(&p.design));
    h.u64(options_fingerprint(base));
    h.u64(p.clock_ps);
    match p.pipeline_ii {
        None => h.u64(0),
        Some(ii) => h.u64(1).u64(u64::from(ii)),
    };
    h.u64(u64::from(p.cycles_per_item));
    h.str(&p.name);
    h.u64(u64::from(mode.cache_tag()));
    h.digest()
}

/// Tuning knobs for [`Engine`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EngineOptions {
    /// Worker threads; `0` = one per available core (capped by point count).
    pub threads: usize,
    /// Skip points that fail to schedule (recorded in
    /// [`SweepResult::skipped`]) instead of failing the whole sweep.
    pub skip_infeasible: bool,
    /// Evaluate through shared phase-artifact prefixes (default). Rows are
    /// bit-identical either way; `false` (the CLI's `--incremental=off`)
    /// runs every phase from scratch per point — the escape hatch and the
    /// benchmark baseline.
    pub incremental: bool,
    /// How points are evaluated when no per-call mode is given: the full
    /// two-flow synthesis (default), the slack-recovery generator, or a
    /// per-cell automatic choice (see [`PointMode`]).
    pub point_mode: PointMode,
}

impl Default for EngineOptions {
    fn default() -> Self {
        EngineOptions {
            threads: 0,
            skip_infeasible: false,
            incremental: true,
            point_mode: PointMode::Full,
        }
    }
}

/// Outcome of one sweep evaluation.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepResult {
    /// One row per feasible point, in input order.
    pub rows: Vec<DseRow>,
    /// Infeasible points as (name, error message), in input order. Empty
    /// unless [`EngineOptions::skip_infeasible`] is set.
    pub skipped: Vec<(String, String)>,
    /// Cache hits observed during this evaluation.
    pub cache_hits: u64,
    /// Worker threads actually used.
    pub workers: usize,
}

impl SweepResult {
    /// The result's Pareto front projected through `space` — the rows
    /// non-dominated under exactly the space's axes, deterministically
    /// ordered (see [`crate::pareto::pareto_front_in`]).
    #[must_use]
    pub fn front_in(&self, space: &crate::pareto::ObjectiveSpace) -> Vec<DseRow> {
        crate::pareto::pareto_front_in(space, &self.rows)
    }

    /// The result's tradeoff staircase in `space`'s plane (see
    /// [`crate::pareto::tradeoff_staircase_in`]).
    #[must_use]
    pub fn staircase_in(&self, space: &crate::pareto::ObjectiveSpace) -> Vec<DseRow> {
        crate::pareto::tradeoff_staircase_in(space, &self.rows)
    }
}

/// The parallel, cache-aware sweep evaluator.
///
/// The cache lives for the engine's lifetime, so successive sweeps sharing
/// points (e.g. grid refinements around a Pareto knee) only pay for the new
/// points.
#[derive(Debug)]
pub struct Engine<'a> {
    lib: &'a Library,
    base: HlsOptions,
    opts: EngineOptions,
    cache: ResultCache,
    prefixes: PrefixCache,
}

impl<'a> Engine<'a> {
    /// An engine with default [`EngineOptions`].
    #[must_use]
    pub fn new(lib: &'a Library, base: HlsOptions) -> Self {
        Engine::with_options(lib, base, EngineOptions::default())
    }

    /// An engine with explicit options.
    #[must_use]
    pub fn with_options(lib: &'a Library, base: HlsOptions, opts: EngineOptions) -> Self {
        Engine {
            lib,
            base,
            opts,
            cache: ResultCache::default(),
            prefixes: PrefixCache::default(),
        }
    }

    /// The base options points are evaluated under (per-point clock/II
    /// override the corresponding fields, as in `dse::evaluate_point`).
    #[must_use]
    pub fn base_options(&self) -> &HlsOptions {
        &self.base
    }

    /// Result-cache hit/miss counters across all evaluations so far.
    #[must_use]
    pub fn cache_stats(&self) -> HitMiss {
        self.cache.stats()
    }

    /// Memo key for one point under the engine's base options.
    fn point_key(&self, p: &DsePoint, mode: PointMode) -> u64 {
        point_key(&self.base, p, mode)
    }

    /// Evaluates one point through the cache, crediting a hit to the
    /// caller's per-sweep counter (not the engine-lifetime stats, which
    /// other concurrent sweeps also move).
    fn evaluate_one(
        &self,
        p: &DsePoint,
        mode: PointMode,
        sweep_hits: &AtomicU64,
    ) -> Result<DseRow> {
        let key = self.point_key(p, mode);
        if let Some(row) = self.cache.get(key) {
            sweep_hits.fetch_add(1, Ordering::Relaxed);
            return Ok(row);
        }
        let row = if self.opts.incremental {
            let prep = self.prefixes.get_or_prepare(&p.design, self.lib)?;
            evaluate_mode_prepared(mode, &prep, p, self.lib, &self.base)?
        } else {
            evaluate_mode_point(mode, p, self.lib, &self.base)?
        };
        self.cache.insert(key, row.clone());
        Ok(row)
    }

    /// Serial reference evaluation (also cache-aware), in the engine's
    /// configured [`EngineOptions::point_mode`].
    ///
    /// # Errors
    ///
    /// Returns the first point's scheduling error unless
    /// [`EngineOptions::skip_infeasible`] is set.
    pub fn evaluate_serial(&self, points: &[DsePoint]) -> Result<SweepResult> {
        self.evaluate_serial_mode(points, self.opts.point_mode)
    }

    /// [`Engine::evaluate_serial`] with an explicit per-call mode.
    ///
    /// # Errors
    ///
    /// As [`Engine::evaluate_serial`].
    pub fn evaluate_serial_mode(
        &self,
        points: &[DsePoint],
        mode: PointMode,
    ) -> Result<SweepResult> {
        let hits = AtomicU64::new(0);
        let mut results: Vec<Result<DseRow>> = Vec::with_capacity(points.len());
        for p in points {
            let r = self.evaluate_one(p, mode, &hits);
            // In strict mode one failure fails the whole sweep — don't burn
            // HLS runs on the remaining points.
            let bail = r.is_err() && !self.opts.skip_infeasible;
            results.push(r);
            if bail {
                break;
            }
        }
        self.collect(points, results, hits.into_inner(), 1)
    }

    /// Parallel evaluation: bit-identical rows to
    /// [`Engine::evaluate_serial`], in input order, in the engine's
    /// configured [`EngineOptions::point_mode`].
    ///
    /// # Errors
    ///
    /// Returns the first (by input order) point's scheduling error unless
    /// [`EngineOptions::skip_infeasible`] is set.
    ///
    /// # Panics
    ///
    /// Panics if a worker thread itself panics (propagated).
    pub fn evaluate(&self, points: &[DsePoint]) -> Result<SweepResult> {
        self.evaluate_mode(points, self.opts.point_mode)
    }

    /// [`Engine::evaluate`] with an explicit per-call mode.
    ///
    /// # Errors
    ///
    /// As [`Engine::evaluate`].
    ///
    /// # Panics
    ///
    /// Panics if a worker thread itself panics (propagated).
    pub fn evaluate_mode(&self, points: &[DsePoint], mode: PointMode) -> Result<SweepResult> {
        let workers = self.worker_count(points.len());
        if workers <= 1 {
            return self.evaluate_serial_mode(points, mode);
        }
        let hits = AtomicU64::new(0);
        let next = AtomicUsize::new(0);
        let failed = std::sync::atomic::AtomicBool::new(false);
        let slots: Vec<OnceLock<Result<DseRow>>> =
            (0..points.len()).map(|_| OnceLock::new()).collect();
        std::thread::scope(|scope| {
            for _ in 0..workers {
                scope.spawn(|| loop {
                    // In strict mode a recorded failure dooms the sweep;
                    // stop claiming new points instead of evaluating them.
                    if !self.opts.skip_infeasible && failed.load(Ordering::Relaxed) {
                        break;
                    }
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    let Some(p) = points.get(i) else { break };
                    let out = self.evaluate_one(p, mode, &hits);
                    if out.is_err() {
                        failed.store(true, Ordering::Relaxed);
                    }
                    assert!(slots[i].set(out).is_ok(), "slot {i} written twice");
                });
            }
        });
        // Indices are claimed contiguously from 0, so filled slots form a
        // prefix; on an early strict-mode bail the unfilled suffix is
        // exactly the points that were never claimed. The first error in
        // the prefix is therefore the first failing point in input order.
        let results: Vec<Result<DseRow>> =
            slots.into_iter().map_while(OnceLock::into_inner).collect();
        self.collect(points, results, hits.into_inner(), workers)
    }

    fn worker_count(&self, n_points: usize) -> usize {
        let hw = std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);
        let requested = if self.opts.threads == 0 {
            hw
        } else {
            self.opts.threads
        };
        requested.min(n_points).max(1)
    }

    /// Applies the error policy and assembles the result, deterministically
    /// (everything is keyed by input order).
    fn collect(
        &self,
        points: &[DsePoint],
        results: Vec<Result<DseRow>>,
        cache_hits: u64,
        workers: usize,
    ) -> Result<SweepResult> {
        let mut rows = Vec::with_capacity(results.len());
        let mut skipped = Vec::new();
        for (p, r) in points.iter().zip(results) {
            match r {
                Ok(row) => rows.push(row),
                Err(e) if self.opts.skip_infeasible => {
                    skipped.push((p.name.clone(), e.to_string()));
                }
                Err(e) => return Err(e),
            }
        }
        Ok(SweepResult {
            rows,
            skipped,
            cache_hits,
            workers,
        })
    }
}

/// One-shot convenience: parallel sweep with default options.
///
/// # Errors
///
/// Propagates the first point's scheduling error.
pub fn explore_parallel(
    points: &[DsePoint],
    lib: &Library,
    base: &HlsOptions,
) -> Result<Vec<DseRow>> {
    Ok(Engine::new(lib, base.clone()).evaluate(points)?.rows)
}

// `Error` is Clone + Send + Sync (asserted in adhls-ir); designs and the
// library are plain data, so sharing them across scoped threads is safe by
// construction. This keeps the compiler honest about it:
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<Error>();
    assert_send_sync::<ResultCache>();
};

#[cfg(test)]
mod tests {
    use super::*;
    use adhls_ir::builder::DesignBuilder;
    use adhls_ir::OpKind;
    use adhls_reslib::tsmc90;

    fn point(name: &str, soft: u32, clock: u64) -> DsePoint {
        let mut b = DesignBuilder::new(name);
        let x = b.input("x", 8);
        let y = b.input("y", 8);
        let m1 = b.binop(OpKind::Mul, x, y, 8);
        let m2 = b.binop(OpKind::Mul, m1, x, 8);
        let a = b.binop(OpKind::Add, m1, m2, 16);
        b.soft_waits(soft);
        b.write("z", a);
        DsePoint {
            name: name.into(),
            design: b.finish().unwrap(),
            clock_ps: clock,
            pipeline_ii: None,
            cycles_per_item: soft + 1,
        }
    }

    fn fleet() -> Vec<DsePoint> {
        (1..=6)
            .flat_map(|soft| {
                [1100u64, 1400].map(|clock| point(&format!("p{soft}c{clock}"), soft, clock))
            })
            .collect()
    }

    #[test]
    fn parallel_matches_serial_bit_for_bit() {
        let lib = tsmc90::library();
        let pts = fleet();
        let serial = Engine::new(&lib, HlsOptions::default())
            .evaluate_serial(&pts)
            .unwrap();
        let par = Engine::with_options(
            &lib,
            HlsOptions::default(),
            EngineOptions {
                threads: 4,
                ..Default::default()
            },
        )
        .evaluate(&pts)
        .unwrap();
        assert_eq!(par.rows, serial.rows);
        assert!(
            par.workers > 1,
            "expected a parallel run, got {} worker",
            par.workers
        );
    }

    #[test]
    fn cache_makes_repeat_sweeps_free() {
        let lib = tsmc90::library();
        let pts = fleet();
        let engine = Engine::new(&lib, HlsOptions::default());
        let first = engine.evaluate(&pts).unwrap();
        assert_eq!(first.cache_hits, 0);
        let second = engine.evaluate(&pts).unwrap();
        assert_eq!(second.cache_hits, pts.len() as u64);
        assert_eq!(first.rows, second.rows);
    }

    #[test]
    fn duplicate_points_hit_within_one_sweep() {
        let lib = tsmc90::library();
        let p = point("dup", 2, 1100);
        let pts = vec![p.clone(), p.clone(), p];
        let engine = Engine::new(&lib, HlsOptions::default());
        let r = engine.evaluate_serial(&pts).unwrap();
        assert_eq!(r.cache_hits, 2);
        assert_eq!(r.rows[0], r.rows[1]);
        assert_eq!(r.rows[0], r.rows[2]);
    }

    #[test]
    fn infeasible_point_fails_or_skips_by_policy() {
        let lib = tsmc90::library();
        // 1 ps clock: nothing fits — guaranteed infeasible.
        let bad = point("bad", 0, 1);
        let good = point("good", 3, 1400);
        let strict = Engine::new(&lib, HlsOptions::default());
        assert!(strict.evaluate(&[good.clone(), bad.clone()]).is_err());
        let lenient = Engine::with_options(
            &lib,
            HlsOptions::default(),
            EngineOptions {
                skip_infeasible: true,
                ..Default::default()
            },
        );
        let r = lenient.evaluate(&[good, bad]).unwrap();
        assert_eq!(r.rows.len(), 1);
        assert_eq!(r.skipped.len(), 1);
        assert_eq!(r.skipped[0].0, "bad");
    }

    #[test]
    fn strict_failure_short_circuits_remaining_points() {
        let lib = tsmc90::library();
        // 1 ps clock: nothing fits — guaranteed infeasible.
        let bad = point("bad", 0, 1);
        let good = point("good", 3, 1400);
        let engine = Engine::new(&lib, HlsOptions::default());
        assert!(engine.evaluate_serial(&[bad, good]).is_err());
        assert_eq!(
            engine.cache_stats().misses,
            1,
            "the point after the failure must not be evaluated"
        );
    }

    #[test]
    fn point_key_distinguishes_max_ii_from_sequential() {
        // `ii + 1` used to wrap Some(u32::MAX) onto None's encoding (and
        // panic in debug); the tag+value encoding must keep them distinct
        // without overflowing.
        let base = HlsOptions::default();
        let m = PointMode::Full;
        let seq = point("k", 2, 1100);
        let mut max_ii = seq.clone();
        max_ii.pipeline_ii = Some(u32::MAX);
        assert_ne!(point_key(&base, &seq, m), point_key(&base, &max_ii, m));
        let mut ii0 = seq.clone();
        ii0.pipeline_ii = Some(0);
        assert_ne!(point_key(&base, &seq, m), point_key(&base, &ii0, m));
        assert_ne!(point_key(&base, &max_ii, m), point_key(&base, &ii0, m));
        // Same point, same key — the memo still works.
        assert_eq!(
            point_key(&base, &max_ii, m),
            point_key(&base, &max_ii.clone(), m)
        );
    }

    #[test]
    fn point_key_distinguishes_modes() {
        // Full, recover, and auto rows for one point are distinct results;
        // a shared cache must never serve one for another.
        let base = HlsOptions::default();
        let p = point("k", 2, 1100);
        let keys = [
            point_key(&base, &p, PointMode::Full),
            point_key(&base, &p, PointMode::Recover),
            point_key(&base, &p, PointMode::Auto),
        ];
        assert_ne!(keys[0], keys[1]);
        assert_ne!(keys[0], keys[2]);
        assert_ne!(keys[1], keys[2]);
    }

    #[test]
    fn recover_mode_rows_dominate_full_mode_baseline() {
        // Engine-level recovery: same grid in both modes; every recovered
        // row's reported implementation must not exceed its own
        // conventional baseline, and the baselines must agree bit-for-bit
        // with full mode's.
        let lib = tsmc90::library();
        let pts = fleet();
        let engine = Engine::new(&lib, HlsOptions::default());
        let full = engine.evaluate_mode(&pts, PointMode::Full).unwrap();
        let rec = engine.evaluate_mode(&pts, PointMode::Recover).unwrap();
        assert_eq!(full.rows.len(), rec.rows.len());
        for (f, r) in full.rows.iter().zip(&rec.rows) {
            assert_eq!(f.a_conv, r.a_conv, "shared conventional baseline");
            assert!(r.a_slack <= r.a_conv, "recovered area exceeds baseline");
        }
    }

    #[test]
    fn concurrent_sweeps_each_count_their_own_hits() {
        // Two sweeps racing on one shared engine must not attribute each
        // other's hits to themselves (the old global-delta accounting did).
        let lib = tsmc90::library();
        let pts = fleet();
        let engine = Engine::new(&lib, HlsOptions::default());
        engine.evaluate_serial(&pts).unwrap(); // warm the cache
        std::thread::scope(|scope| {
            let handles: Vec<_> = (0..4)
                .map(|_| scope.spawn(|| engine.evaluate(&pts).unwrap()))
                .collect();
            for h in handles {
                let r = h.join().unwrap();
                assert_eq!(
                    r.cache_hits,
                    pts.len() as u64,
                    "each warm sweep sees exactly its own hits"
                );
            }
        });
    }

    #[test]
    fn one_shot_helper_matches_core_explore() {
        let lib = tsmc90::library();
        let pts = fleet();
        let via_engine = explore_parallel(&pts, &lib, &HlsOptions::default()).unwrap();
        let via_core = adhls_core::dse::explore(&pts, &lib, &HlsOptions::default()).unwrap();
        assert_eq!(via_engine, via_core);
    }
}
