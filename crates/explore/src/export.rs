//! JSON/CSV exporters for sweep rows and Pareto fronts.
//!
//! Hand-rolled serialization (the build environment vendors no serde):
//! numbers use Rust's shortest-roundtrip `Display` for `f64`, strings are
//! JSON-escaped, and field order is fixed, so exports are byte-stable for
//! identical rows — diffs of exploration artifacts stay meaningful.
//!
//! Front documents record the [`ObjectiveSpace`] that produced them in an
//! `objectives` field, and [`crate::refine::WarmStart`] reads it back — so
//! a front exported under one space can safely warm-start a refinement in
//! another, with the provenance visible.

use crate::constraint::{constraints_to_json, Constraint};
use crate::pareto::ObjectiveSpace;
use crate::refine::{MultiRefineResult, RefineResult};
use adhls_core::dse::DseRow;
use std::fmt::Write as _;

/// JSON-escapes a string into `out` (quotes included).
fn json_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Writes one row as a JSON object.
fn json_row(out: &mut String, row: &DseRow) {
    out.push_str("{\"name\":");
    json_string(out, &row.name);
    let _ = write!(
        out,
        ",\"clock_ps\":{},\"a_conv\":{},\"a_slack\":{},\"save_pct\":{},\
         \"power\":{{\"dynamic\":{},\"leakage\":{},\"total\":{}}},\
         \"throughput_per_us\":{},\"latency_ps\":{}}}",
        row.clock_ps,
        row.a_conv,
        row.a_slack,
        row.save_pct,
        row.power.dynamic,
        row.power.leakage,
        row.power.total,
        row.throughput,
        row.latency_ps,
    );
}

/// Renders an objective space as the JSON axis-name array every exporting
/// surface (file documents, protocol responses) embeds — one definition so
/// [`crate::refine::WarmStart`] can rely on the shape.
#[must_use]
pub fn objectives_to_json(space: &ObjectiveSpace) -> String {
    let mut out = String::from("[");
    for (i, name) in space.names().iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push('"');
        out.push_str(name);
        out.push('"');
    }
    out.push(']');
    out
}

/// Renders rows as a *single-line* JSON array (input order preserved) —
/// the rendering the line-delimited server protocol embeds in response
/// messages, where a literal newline would split one message into two.
/// Field order and number formatting match [`rows_to_json`] exactly, so a
/// row rendered here is byte-identical to the same row in a file export
/// modulo the indentation.
#[must_use]
pub fn rows_to_json_line(rows: &[DseRow]) -> String {
    let mut out = String::from("[");
    for (i, row) in rows.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        json_row(&mut out, row);
    }
    out.push(']');
    out
}

/// Renders rows as a JSON array (input order preserved).
#[must_use]
pub fn rows_to_json(rows: &[DseRow]) -> String {
    let mut out = String::from("[");
    for (i, row) in rows.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push('\n');
        out.push_str("  ");
        json_row(&mut out, row);
    }
    out.push_str("\n]");
    if rows.is_empty() {
        return String::from("[]");
    }
    out
}

/// Renders a sweep and its Pareto front as one JSON document:
/// `{"objectives": [...], "constraints": [...], "sweep": [...],
/// "front": [...]}` where `front` is the deterministic non-dominated
/// subset *in `space`* and `objectives`/`constraints` record which axes
/// and bounds produced it, so the document is self-describing (and warm
/// starts can surface the provenance).
#[must_use]
pub fn front_to_json_in(rows: &[DseRow], front: &[DseRow], space: &ObjectiveSpace) -> String {
    front_to_json_constrained(rows, front, space, &[])
}

/// [`front_to_json_in`] with the constraints that produced `front`
/// recorded next to the space (`front` is expected to be the constrained
/// extraction — see [`crate::pareto::pareto_front_in_constrained`]).
#[must_use]
pub fn front_to_json_constrained(
    rows: &[DseRow],
    front: &[DseRow],
    space: &ObjectiveSpace,
    constraints: &[Constraint],
) -> String {
    format!(
        "{{\n\"objectives\": {},\n\"constraints\": {},\n\"sweep\": {},\n\"front\": {}\n}}",
        objectives_to_json(space),
        constraints_to_json(constraints),
        rows_to_json(rows),
        rows_to_json(front)
    )
}

/// Renders a **multi-plane** sweep as one JSON document: the shared
/// `sweep` rows plus a `planes` array with each plane's `objectives` and
/// constrained `front`/`staircase`. The top-level `objectives` and
/// `front` mirror the *first* plane, so single-plane consumers (including
/// [`crate::refine::WarmStart::parse`]) read multi-plane documents
/// unchanged.
#[must_use]
pub fn fronts_to_json_multi(
    rows: &[DseRow],
    planes: &[(ObjectiveSpace, Vec<DseRow>)],
    constraints: &[Constraint],
) -> String {
    let mut plane_docs = String::from("[");
    for (i, (space, front)) in planes.iter().enumerate() {
        if i > 0 {
            plane_docs.push(',');
        }
        let _ = write!(
            plane_docs,
            "\n  {{\"objectives\": {},\n   \"staircase\": {},\n   \"front\": {}}}",
            objectives_to_json(space),
            rows_to_json_line(&crate::pareto::tradeoff_staircase_in_constrained(
                space,
                constraints,
                rows
            )),
            rows_to_json_line(front),
        );
    }
    plane_docs.push_str(if planes.is_empty() { "]" } else { "\n]" });
    let (first_objs, first_front) = match planes.first() {
        Some((s, f)) => (objectives_to_json(s), rows_to_json(f)),
        None => (
            objectives_to_json(&ObjectiveSpace::full()),
            String::from("[]"),
        ),
    };
    format!(
        "{{\n\"objectives\": {},\n\"constraints\": {},\n\"planes\": {},\n\
         \"sweep\": {},\n\"front\": {}\n}}",
        first_objs,
        constraints_to_json(constraints),
        plane_docs,
        rows_to_json(rows),
        first_front
    )
}

/// [`front_to_json_in`] for a front extracted in [`ObjectiveSpace::full`]
/// — the pre-redesign four-objective document.
#[must_use]
pub fn front_to_json(rows: &[DseRow], front: &[DseRow]) -> String {
    front_to_json_in(rows, front, &ObjectiveSpace::full())
}

/// Renders an adaptive refinement as one JSON document: the steering
/// plane, the evaluated sweep, the converged `staircase` *in that plane*,
/// the front, and a `refine` block with the per-round trace so runs are
/// auditable (how many cells each round added, how the front grew, how
/// wide the worst gap was, what the prune discarded).
///
/// Field semantics match the wire's refine result: `objectives` is the
/// plane that steered the run (what a warm start records as provenance),
/// `staircase` is the plane's tradeoff curve, and `front` is **always**
/// the full four-objective front over the evaluated rows — project
/// through [`crate::pareto::pareto_front_in`] for any other view.
#[must_use]
pub fn refine_to_json(result: &RefineResult) -> String {
    let mut rounds = String::from("[");
    for (i, r) in result.trace.iter().enumerate() {
        if i > 0 {
            rounds.push(',');
        }
        let _ = write!(
            rounds,
            "\n    {{\"round\":{},\"new_points\":{},\"front_size\":{},\
             \"max_gap\":{},\"pruned\":{}}}",
            r.round, r.new_points, r.front_size, r.max_gap, r.pruned,
        );
    }
    rounds.push_str(if result.trace.is_empty() {
        "]"
    } else {
        "\n  ]"
    });
    format!(
        "{{\n\"objectives\": {},\n\"constraints\": {},\n\"sweep\": {},\n\"staircase\": {},\n\
         \"front\": {},\n\
         \"refine\": {{\n  \
         \"grid_cells\":{},\"evaluated\":{},\"pruned\":{},\n  \"rounds\": {}\n}}\n}}",
        objectives_to_json(&result.objectives),
        constraints_to_json(&result.constraints),
        rows_to_json(&result.rows),
        rows_to_json(&crate::pareto::tradeoff_staircase_in_constrained(
            &result.objectives,
            &result.constraints,
            &result.rows
        )),
        rows_to_json(&result.front),
        result.grid_cells,
        result.evaluated,
        result.pruned,
        rounds,
    )
}

/// Renders a multi-plane refinement ([`crate::refine::refine_multi`]) as
/// one JSON document: the shared `sweep`/`front`, a `planes` array with
/// each plane's `objectives`, converged constrained `staircase`, and
/// per-plane `rounds` (that plane's gaps and proposal counts), and a
/// `refine` audit block whose merged `rounds` carry per-plane
/// `plane_gaps`. The top-level `objectives` mirrors the first plane so
/// [`crate::refine::WarmStart::parse`] reads the document unchanged.
#[must_use]
pub fn refine_multi_to_json(result: &MultiRefineResult) -> String {
    let plane_rounds = |r: &RefineResult| {
        let mut out = String::from("[");
        for (i, t) in r.trace.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "{{\"round\":{},\"new_points\":{},\"front_size\":{},\"max_gap\":{},\"pruned\":{}}}",
                t.round, t.new_points, t.front_size, t.max_gap, t.pruned,
            );
        }
        out.push(']');
        out
    };
    let mut planes = String::from("[");
    for (i, p) in result.planes.iter().enumerate() {
        if i > 0 {
            planes.push(',');
        }
        let _ = write!(
            planes,
            "\n  {{\"objectives\": {},\n   \"staircase\": {},\n   \"rounds\": {}}}",
            objectives_to_json(&p.objectives),
            rows_to_json_line(&crate::pareto::tradeoff_staircase_in_constrained(
                &p.objectives,
                &result.constraints,
                &result.rows
            )),
            plane_rounds(p),
        );
    }
    planes.push_str(if result.planes.is_empty() { "]" } else { "\n]" });
    let mut rounds = String::from("[");
    for (i, t) in result.trace.iter().enumerate() {
        if i > 0 {
            rounds.push(',');
        }
        let mut gaps = String::from("[");
        for (j, g) in t.plane_gaps.iter().enumerate() {
            if j > 0 {
                gaps.push(',');
            }
            let _ = write!(gaps, "{g}");
        }
        gaps.push(']');
        let _ = write!(
            rounds,
            "\n    {{\"round\":{},\"new_points\":{},\"front_size\":{},\
             \"plane_gaps\":{gaps},\"pruned\":{}}}",
            t.round, t.new_points, t.front_size, t.pruned,
        );
    }
    rounds.push_str(if result.trace.is_empty() {
        "]"
    } else {
        "\n  ]"
    });
    let first_objs = result.planes.first().map_or_else(
        || objectives_to_json(&ObjectiveSpace::default()),
        |p| objectives_to_json(&p.objectives),
    );
    format!(
        "{{\n\"objectives\": {},\n\"constraints\": {},\n\"planes\": {},\n\"sweep\": {},\n\
         \"front\": {},\n\
         \"refine\": {{\n  \
         \"grid_cells\":{},\"evaluated\":{},\"pruned\":{},\n  \"rounds\": {}\n}}\n}}",
        first_objs,
        constraints_to_json(&result.constraints),
        planes,
        rows_to_json(&result.rows),
        rows_to_json(&result.front),
        result.grid_cells,
        result.evaluated,
        result.pruned,
        rounds,
    )
}

/// Renders rows as CSV with a header line.
#[must_use]
pub fn rows_to_csv(rows: &[DseRow]) -> String {
    let mut out = String::from(
        "name,clock_ps,a_conv,a_slack,save_pct,power_dynamic,power_leakage,\
         power_total,throughput_per_us,latency_ps\n",
    );
    for row in rows {
        let name = if row.name.contains([',', '"', '\n']) {
            format!("\"{}\"", row.name.replace('"', "\"\""))
        } else {
            row.name.clone()
        };
        let _ = writeln!(
            out,
            "{name},{},{},{},{},{},{},{},{},{}",
            row.clock_ps,
            row.a_conv,
            row.a_slack,
            row.save_pct,
            row.power.dynamic,
            row.power.leakage,
            row.power.total,
            row.throughput,
            row.latency_ps,
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use adhls_core::power::PowerReport;

    fn row(name: &str) -> DseRow {
        DseRow {
            name: name.into(),
            a_conv: 1000.0,
            a_slack: 900.5,
            save_pct: 9.95,
            power: PowerReport {
                dynamic: 8.0,
                leakage: 2.0,
                total: 10.0,
            },
            throughput: 250.0,
            latency_ps: 4000.0,
            clock_ps: 1100,
        }
    }

    #[test]
    fn json_shape_and_values() {
        let s = rows_to_json(&[row("d1"), row("d2")]);
        assert!(s.starts_with('['));
        assert!(s.ends_with(']'));
        assert!(s.contains("\"name\":\"d1\""));
        assert!(s.contains("\"a_slack\":900.5"));
        assert!(s.contains("\"latency_ps\":4000"));
        assert_eq!(s.matches("{\"name\"").count(), 2);
    }

    #[test]
    fn json_escapes_names() {
        let s = rows_to_json(&[row("a\"b\\c")]);
        assert!(s.contains("\"a\\\"b\\\\c\""));
    }

    #[test]
    fn empty_rows_render_as_empty_array() {
        assert_eq!(rows_to_json(&[]), "[]");
    }

    #[test]
    fn csv_has_header_and_one_line_per_row() {
        let s = rows_to_csv(&[row("d1"), row("d2")]);
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 3);
        assert!(lines[0].starts_with("name,clock_ps"));
        assert!(lines[1].starts_with("d1,1100,1000,900.5,"));
    }

    #[test]
    fn csv_quotes_awkward_names() {
        let s = rows_to_csv(&[row("a,b\"c")]);
        assert!(s.contains("\"a,b\"\"c\""));
    }

    #[test]
    fn single_line_rendering_matches_pretty_rendering_modulo_whitespace() {
        let rows = [row("d1"), row("d2")];
        let line = rows_to_json_line(&rows);
        assert!(!line.contains('\n'), "one message, one line: {line}");
        let pretty: String = rows_to_json(&rows)
            .chars()
            .filter(|c| *c != '\n' && *c != ' ')
            .collect();
        assert_eq!(line, pretty);
        assert_eq!(rows_to_json_line(&[]), "[]");
    }

    #[test]
    fn combined_document_nests_both_arrays_and_records_its_space() {
        let rows = [row("d1")];
        let s = front_to_json(&rows, &rows);
        assert!(s.contains("\"sweep\":"));
        assert!(s.contains("\"front\":"));
        assert!(
            s.contains("\"objectives\": [\"area\",\"latency\",\"power\",\"throughput\"]"),
            "{s}"
        );
        let power = front_to_json_in(&rows, &rows, &ObjectiveSpace::parse("area,power").unwrap());
        assert!(
            power.contains("\"objectives\": [\"area\",\"power\"]"),
            "{power}"
        );
        // The provenance round-trips through the warm-start parser.
        let ws = crate::refine::WarmStart::parse(&power).unwrap();
        assert_eq!(
            ws.objectives,
            Some(ObjectiveSpace::parse("area,power").unwrap())
        );
    }

    #[test]
    fn constrained_documents_record_and_round_trip_their_bounds() {
        use crate::constraint::parse_constraints;
        let rows = [row("d1")];
        let cs = parse_constraints(&["area<=1500", "power<=40"]).unwrap();
        let doc = front_to_json_constrained(
            &rows,
            &rows,
            &ObjectiveSpace::parse("area,power").unwrap(),
            &cs,
        );
        assert!(
            doc.contains("\"constraints\": [\"area<=1500\",\"power<=40\"]"),
            "{doc}"
        );
        let ws = crate::refine::WarmStart::parse(&doc).unwrap();
        assert_eq!(ws.constraints, cs);
        // Unconstrained documents record an empty list, which reads back
        // as unconstrained.
        let plain = front_to_json_in(&rows, &rows, &ObjectiveSpace::full());
        assert!(plain.contains("\"constraints\": []"), "{plain}");
        assert!(crate::refine::WarmStart::parse(&plain)
            .unwrap()
            .constraints
            .is_empty());
    }

    #[test]
    fn multi_plane_documents_nest_per_plane_views() {
        let rows = [row("d1"), row("d2")];
        let planes = vec![
            (
                ObjectiveSpace::parse("area,latency").unwrap(),
                rows.to_vec(),
            ),
            (ObjectiveSpace::parse("area,power").unwrap(), rows.to_vec()),
        ];
        let doc = fronts_to_json_multi(&rows, &planes, &[]);
        assert!(doc.contains("\"planes\":"), "{doc}");
        assert!(
            doc.contains("\"objectives\": [\"area\",\"latency\"]"),
            "{doc}"
        );
        assert!(
            doc.contains("\"objectives\": [\"area\",\"power\"]"),
            "{doc}"
        );
        // The top level mirrors the first plane, so warm starts read the
        // document like any single-plane export.
        let ws = crate::refine::WarmStart::parse(&doc).unwrap();
        assert_eq!(
            ws.objectives,
            Some(ObjectiveSpace::parse("area,latency").unwrap())
        );
    }

    #[test]
    fn objectives_render_as_a_name_array() {
        assert_eq!(
            objectives_to_json(&ObjectiveSpace::default()),
            "[\"area\",\"latency\"]"
        );
    }
}
