//! Persistent evaluator pool: worker threads and a sharded result cache
//! that outlive individual sweeps.
//!
//! [`Engine`](crate::engine::Engine) spawns scoped workers per sweep — fine
//! for one-shot CLI runs, wasteful when a server handles many concurrent
//! exploration requests (thread churn, and every request starts cold).
//! [`EvaluatorPool`] keeps the workers and the memo cache alive across
//! requests: share the pool via `Arc`, submit batches from any thread, and
//! cells revisited by later sweeps (adaptive refinement re-deriving a
//! neighborhood, two clients exploring overlapping grids) are free.
//!
//! Determinism contract, inherited from the engine: each point's row is a
//! pure function of (design, library, options), rows are published into
//! per-index slots, and cache hits return bit-identical rows — so a batch's
//! result does not depend on which thread ran which point, how many worker
//! threads exist, or what other batches are in flight.
//!
//! The submitting thread always helps drain its own batch, so a batch makes
//! progress even on a pool with zero background workers (`threads: 1`
//! behaves exactly like the serial engine) and submitters cannot deadlock
//! waiting on a saturated pool.

use crate::engine::{point_key, HitMiss, PrefixCache, SweepResult};
use crate::server::eviction::{CacheStats, EvictingCache, Outcome};
use adhls_core::dse::{DsePoint, DseRow};
use adhls_core::recover::{evaluate_mode_point, evaluate_mode_prepared};
use adhls_core::sched::HlsOptions;
use adhls_core::PointMode;
use adhls_reslib::Library;
use adhls_telemetry::{Registry, Snapshot};
use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock};
use std::thread::JoinHandle;
use std::time::Instant;

use adhls_ir::{Error, Result};

/// Tuning knobs for [`EvaluatorPool`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PoolOptions {
    /// Total evaluation threads per batch, counting the submitter; `0` =
    /// one per available core. `1` means no background workers at all
    /// (submitters drain their own batches serially).
    pub threads: usize,
    /// Skip points that fail to schedule (recorded in
    /// [`SweepResult::skipped`]) instead of failing the whole batch.
    pub skip_infeasible: bool,
    /// Approximate byte budget for the cross-request result cache
    /// (`None` = unbounded, the one-shot CLI default). Long-lived servers
    /// should set this; see [`crate::server::eviction`].
    pub cache_bytes: Option<usize>,
    /// Reuse clock-independent prefix artifacts
    /// ([`PreparedDesign`](adhls_core::PreparedDesign)) across the cells of
    /// a design (default). `false` re-elaborates every point from scratch —
    /// the escape hatch and the benchmark baseline; rows are bit-identical
    /// either way.
    pub incremental: bool,
    /// Evaluation mode for batches submitted without a per-call mode
    /// ([`EvaluatorPool::evaluate`]): full two-flow synthesis (default),
    /// slack recovery, or per-cell auto (see [`PointMode`]). Per-request
    /// modes ([`EvaluatorPool::evaluate_mode`]) share the same workers and
    /// cache — the mode is part of every row's cache key.
    pub point_mode: PointMode,
}

impl Default for PoolOptions {
    fn default() -> Self {
        PoolOptions {
            threads: 0,
            skip_infeasible: false,
            cache_bytes: None,
            incremental: true,
            point_mode: PointMode::Full,
        }
    }
}

/// One submitted sweep: its points, result slots, and completion state.
///
/// Claiming is a single shared counter, so claimed indices always form a
/// contiguous prefix and every claimed slot is eventually filled by its
/// claimer — the same publication scheme the engine uses, which is what
/// makes pool results bit-identical to serial evaluation.
struct Batch {
    points: Vec<DsePoint>,
    /// Evaluation mode for every point in this batch; batches with
    /// different modes coexist on one pool.
    mode: PointMode,
    skip_infeasible: bool,
    next: AtomicUsize,
    filled: AtomicUsize,
    slots: Vec<OnceLock<Result<DseRow>>>,
    hits: AtomicU64,
    failed: AtomicBool,
    done: Mutex<bool>,
    done_cv: Condvar,
    /// Submission time, captured only when the pool's telemetry is enabled
    /// (the pool records submit→start and start→done latencies from it).
    submitted: Option<Instant>,
    /// First claim time, set by whichever thread claims index 0's slot in
    /// the claim counter (i.e. wins the first `fetch_add`).
    started: OnceLock<Instant>,
}

impl Batch {
    fn new(points: Vec<DsePoint>, mode: PointMode, skip_infeasible: bool, timed: bool) -> Self {
        let slots = (0..points.len()).map(|_| OnceLock::new()).collect();
        Batch {
            points,
            mode,
            skip_infeasible,
            next: AtomicUsize::new(0),
            filled: AtomicUsize::new(0),
            slots,
            hits: AtomicU64::new(0),
            failed: AtomicBool::new(false),
            done: Mutex::new(false),
            done_cv: Condvar::new(),
            submitted: timed.then(Instant::now),
            started: OnceLock::new(),
        }
    }

    /// True when no further indices should be claimed: every index is
    /// taken, or a strict-mode failure doomed the batch.
    fn exhausted(&self) -> bool {
        self.next.load(Ordering::Relaxed) >= self.points.len()
            || (!self.skip_infeasible && self.failed.load(Ordering::Relaxed))
    }

    /// True when every claimed slot has been filled and no more claims can
    /// happen — the submitter may collect.
    ///
    /// `next`'s fetch_adds return 0, 1, 2, …, so the number of claims ever
    /// made is exactly `min(next, len)` — one atomic tells us both "how far
    /// claiming got" and "how many fills are owed", with no window where a
    /// claim is made but not yet registered. `filled` is read *before*
    /// `next`: if the two agree, no claim existed unfilled at the earlier
    /// read, and no claim has happened since (the count didn't move).
    fn complete(&self) -> bool {
        let filled = self.filled.load(Ordering::Acquire);
        let next = self.next.load(Ordering::Acquire);
        let claims = next.min(self.points.len());
        let exhausted = next >= self.points.len()
            || (!self.skip_infeasible && self.failed.load(Ordering::Acquire));
        exhausted && filled == claims
    }

    fn signal_if_complete(&self) {
        if self.complete() {
            let mut done = self.done.lock().expect("batch mutex poisoned");
            *done = true;
            self.done_cv.notify_all();
        }
    }

    fn wait_complete(&self) {
        let mut done = self.done.lock().expect("batch mutex poisoned");
        while !*done {
            done = self.done_cv.wait(done).expect("batch mutex poisoned");
        }
    }
}

/// Shared state between the pool handle and its worker threads.
struct Shared {
    lib: Library,
    base: HlsOptions,
    cache: EvictingCache,
    /// Prefix artifacts shared across batches (see
    /// [`PreparedDesign`](adhls_core::PreparedDesign)); unused when
    /// [`PoolOptions::incremental`] is off.
    prefixes: PrefixCache,
    incremental: bool,
    queue: Mutex<VecDeque<Arc<Batch>>>,
    work_ready: Condvar,
    shutdown: AtomicBool,
    /// Pool-scoped metrics registry, installed as the thread-current
    /// registry on worker threads and around submitter drains so pipeline
    /// phase spans from any batch land here. Disabled (and therefore
    /// nearly free) unless the owner enables it.
    registry: Registry,
}

impl Shared {
    /// Evaluates one point through the cross-request cache, crediting a hit
    /// to the batch's own counter (per-sweep accounting — concurrent
    /// batches must not see each other's hits). Coalescing onto another
    /// request's in-flight evaluation of the same key counts as a hit too:
    /// from this batch's perspective the row was free.
    ///
    /// A panic inside HLS evaluation is caught and surfaced as an error:
    /// on a persistent pool the panicking thread may be a background
    /// worker, and a claimed-but-never-filled slot would leave the
    /// submitter waiting forever (the scoped-thread engine propagates such
    /// panics at join; a pool has no equivalent joining point per batch).
    fn evaluate_one(
        &self,
        p: &DsePoint,
        mode: PointMode,
        batch_hits: &AtomicU64,
    ) -> Result<DseRow> {
        let key = point_key(&self.base, p, mode);
        let (result, outcome) = self.cache.get_or_compute(key, || {
            std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                if self.incremental {
                    let prep = self.prefixes.get_or_prepare(&p.design, &self.lib)?;
                    evaluate_mode_prepared(mode, &prep, p, &self.lib, &self.base)
                } else {
                    evaluate_mode_point(mode, p, &self.lib, &self.base)
                }
            }))
            .unwrap_or_else(|panic| {
                let msg = panic
                    .downcast_ref::<&str>()
                    .map(|s| (*s).to_string())
                    .or_else(|| panic.downcast_ref::<String>().cloned())
                    .unwrap_or_else(|| "non-string panic payload".into());
                Err(Error::Interp(format!(
                    "evaluating {} panicked: {msg}",
                    p.name
                )))
            })
        });
        if result.is_ok() && outcome != Outcome::Computed {
            batch_hits.fetch_add(1, Ordering::Relaxed);
        }
        result
    }

    /// Claims and evaluates points from `batch` until it is exhausted.
    fn drain(&self, batch: &Batch) {
        loop {
            if !batch.skip_infeasible && batch.failed.load(Ordering::Relaxed) {
                break;
            }
            let i = batch.next.fetch_add(1, Ordering::AcqRel);
            if i >= batch.points.len() {
                break;
            }
            if let Some(submitted) = batch.submitted {
                // First claimer stamps the batch start and credits the time
                // it spent queued (submit→start) — each batch reports once.
                let now = Instant::now();
                if batch.started.set(now).is_ok() {
                    self.registry.observe(
                        "pool.batch.submit_to_start_us",
                        now.duration_since(submitted).as_secs_f64() * 1e6,
                    );
                }
            }
            let out = self.evaluate_one(&batch.points[i], batch.mode, &batch.hits);
            if out.is_err() {
                batch.failed.store(true, Ordering::Relaxed);
            }
            assert!(batch.slots[i].set(out).is_ok(), "slot {i} written twice");
            batch.filled.fetch_add(1, Ordering::AcqRel);
            batch.signal_if_complete();
        }
        // An exhausted batch with zero points (or one doomed before this
        // worker claimed anything) still needs its completion signal.
        batch.signal_if_complete();
    }

    /// Background worker: pick the oldest batch with work left, help drain
    /// it, repeat until shutdown. The pool registry is installed for the
    /// thread's lifetime, so pipeline spans from evaluations land on it,
    /// and idle (waiting for work) vs busy (draining) time is credited to
    /// the `pool.worker.{idle,busy}_us` counters.
    fn worker_loop(&self) {
        let _telemetry = adhls_telemetry::install(&self.registry);
        loop {
            let idle_from = self.registry.is_enabled().then(Instant::now);
            let batch = {
                let mut q = self.queue.lock().expect("pool queue poisoned");
                loop {
                    while q.front().is_some_and(|b| b.exhausted()) {
                        q.pop_front();
                    }
                    self.registry.gauge_set("pool.queue_depth", q.len() as i64);
                    if let Some(b) = q.front() {
                        break Arc::clone(b);
                    }
                    if self.shutdown.load(Ordering::Acquire) {
                        return;
                    }
                    q = self.work_ready.wait(q).expect("pool queue poisoned");
                }
            };
            if let Some(t) = idle_from {
                self.counter_elapsed_us("pool.worker.idle_us", t);
            }
            let busy_from = self.registry.is_enabled().then(Instant::now);
            self.drain(&batch);
            if let Some(t) = busy_from {
                self.counter_elapsed_us("pool.worker.busy_us", t);
            }
        }
    }

    /// Adds the whole microseconds elapsed since `from` to counter `name`.
    fn counter_elapsed_us(&self, name: &str, from: Instant) {
        #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
        self.registry
            .counter_add(name, from.elapsed().as_micros() as u64);
    }
}

/// A persistent, shareable sweep evaluator.
///
/// Construct once (wrapping in `Arc` to share across request handlers),
/// then call [`EvaluatorPool::evaluate`] from any number of threads
/// concurrently. All requests share the worker threads and the sharded
/// result cache.
///
/// # Example
///
/// ```
/// use adhls_core::sched::HlsOptions;
/// use adhls_explore::pool::{EvaluatorPool, PoolOptions};
/// use adhls_reslib::tsmc90;
/// use adhls_workloads::sweep;
/// use std::sync::Arc;
///
/// let pool = Arc::new(EvaluatorPool::new(
///     tsmc90::library(),
///     HlsOptions::default(),
///     PoolOptions { threads: 4, ..Default::default() },
/// ));
/// let points = sweep::interpolation_default();
/// let first = pool.evaluate(&points).unwrap();
/// let second = pool.evaluate(&points).unwrap(); // all cache hits
/// assert_eq!(first.rows, second.rows);
/// assert_eq!(second.cache_hits, points.len() as u64);
/// ```
pub struct EvaluatorPool {
    shared: Arc<Shared>,
    opts: PoolOptions,
    workers: Vec<JoinHandle<()>>,
}

impl std::fmt::Debug for EvaluatorPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EvaluatorPool")
            .field("opts", &self.opts)
            .field("workers", &self.workers.len())
            .finish_non_exhaustive()
    }
}

impl EvaluatorPool {
    /// Spawns the pool. `threads` counts the submitting thread, so a pool
    /// of `threads: N` spawns `N - 1` background workers (`0` = one thread
    /// per available core). The pool owns a fresh, **disabled** metrics
    /// registry; use [`EvaluatorPool::with_telemetry`] to supply one (or
    /// enable via [`EvaluatorPool::telemetry`]).
    #[must_use]
    pub fn new(lib: Library, base: HlsOptions, opts: PoolOptions) -> Self {
        Self::with_telemetry(lib, base, opts, Registry::new())
    }

    /// [`EvaluatorPool::new`], collecting metrics into `registry`: queue
    /// depth, batch latencies, worker busy/idle time, and — because the
    /// registry is installed on worker threads and around submitter
    /// drains — the per-phase `pipeline.*` histograms of every evaluation
    /// run through the pool.
    #[must_use]
    pub fn with_telemetry(
        lib: Library,
        base: HlsOptions,
        opts: PoolOptions,
        registry: Registry,
    ) -> Self {
        let shared = Arc::new(Shared {
            lib,
            base,
            cache: EvictingCache::new(opts.cache_bytes),
            prefixes: PrefixCache::default(),
            incremental: opts.incremental,
            queue: Mutex::new(VecDeque::new()),
            work_ready: Condvar::new(),
            shutdown: AtomicBool::new(false),
            registry,
        });
        let threads = if opts.threads == 0 {
            std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
        } else {
            opts.threads
        };
        let workers = (1..threads)
            .map(|i| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("adhls-pool-{i}"))
                    .spawn(move || shared.worker_loop())
                    .expect("spawning pool worker")
            })
            .collect();
        EvaluatorPool {
            shared,
            opts,
            workers,
        }
    }

    /// Evaluates a batch through the pool: bit-identical rows to
    /// [`Engine::evaluate_serial`](crate::engine::Engine::evaluate_serial)
    /// under the same library/options, in input order. The submitting
    /// thread participates in the work, and background workers join in
    /// (also finishing older batches first).
    ///
    /// # Errors
    ///
    /// Returns the first (by input order) point's scheduling error unless
    /// [`PoolOptions::skip_infeasible`] is set.
    pub fn evaluate(&self, points: &[DsePoint]) -> Result<SweepResult> {
        self.evaluate_mode(points, self.opts.point_mode)
    }

    /// [`EvaluatorPool::evaluate`] with an explicit per-batch evaluation
    /// mode, so one shared server pool serves full, recover, and auto
    /// requests concurrently (rows never alias — the mode is in the cache
    /// key).
    ///
    /// # Errors
    ///
    /// As [`EvaluatorPool::evaluate`].
    pub fn evaluate_mode(&self, points: &[DsePoint], mode: PointMode) -> Result<SweepResult> {
        // Route the submitting thread's own evaluations (it always helps
        // drain) to the pool registry, like the background workers.
        let _telemetry = adhls_telemetry::install(&self.shared.registry);
        let batch = Arc::new(Batch::new(
            points.to_vec(),
            mode,
            self.opts.skip_infeasible,
            self.shared.registry.is_enabled(),
        ));
        {
            let mut q = self.shared.queue.lock().expect("pool queue poisoned");
            q.push_back(Arc::clone(&batch));
            self.shared
                .registry
                .gauge_set("pool.queue_depth", q.len() as i64);
            self.shared.work_ready.notify_all();
        }
        self.shared.drain(&batch);
        batch.wait_complete();
        self.shared.registry.counter_add("pool.batches", 1);
        self.shared
            .registry
            .counter_add("pool.points", points.len() as u64);
        if let (Some(submitted), Some(&started)) = (batch.submitted, batch.started.get()) {
            let done = Instant::now();
            self.shared.registry.observe(
                "pool.batch.start_to_done_us",
                done.duration_since(started).as_secs_f64() * 1e6,
            );
            self.shared.registry.observe(
                "pool.batch.submit_to_done_us",
                done.duration_since(submitted).as_secs_f64() * 1e6,
            );
        }
        // Retire the batch from the queue ourselves: background workers
        // also pop exhausted fronts opportunistically, but on a pool with
        // no background workers (threads: 1) nobody else ever would, and a
        // long-lived pool would leak one finished batch per request.
        {
            let mut q = self.shared.queue.lock().expect("pool queue poisoned");
            q.retain(|b| !Arc::ptr_eq(b, &batch));
            self.shared
                .registry
                .gauge_set("pool.queue_depth", q.len() as i64);
        }
        // Claims were contiguous from 0 and every claimed slot is filled,
        // so filled slots form a prefix; the unfilled suffix (strict-mode
        // early bail) is exactly the never-claimed points. The queue (and a
        // worker between loop iterations) may still hold the Arc briefly,
        // so collect by reference instead of consuming it.
        let hits = batch.hits.load(Ordering::Acquire);
        let results: Vec<Result<DseRow>> =
            batch.slots.iter().map_while(|s| s.get().cloned()).collect();
        let mut rows = Vec::with_capacity(results.len());
        let mut skipped = Vec::new();
        for (p, r) in batch.points.iter().zip(results) {
            match r {
                Ok(row) => rows.push(row),
                Err(e) if self.opts.skip_infeasible => {
                    skipped.push((p.name.clone(), e.to_string()));
                }
                Err(e) => return Err(e),
            }
        }
        Ok(SweepResult {
            rows,
            skipped,
            cache_hits: hits,
            workers: self.workers.len() + 1,
        })
    }

    /// Hit/miss totals across the pool's lifetime, all batches combined.
    /// Hits include coalesced in-flight waits — both avoided an HLS run.
    /// See [`EvaluatorPool::cache_metrics`] for the full breakdown.
    #[must_use]
    pub fn cache_stats(&self) -> HitMiss {
        self.shared.cache.stats().hit_miss()
    }

    /// Full cache counters and gauges (hits, coalesced waits, misses,
    /// evictions, live entries/bytes, configured budget) — what the
    /// server's `stats` request reports.
    #[must_use]
    pub fn cache_metrics(&self) -> CacheStats {
        self.shared.cache.stats()
    }

    /// Number of distinct (design, options) results currently cached.
    #[must_use]
    pub fn cache_len(&self) -> usize {
        self.shared.cache.len()
    }

    /// Total evaluation threads per batch (background workers + the
    /// submitter).
    #[must_use]
    pub fn thread_count(&self) -> usize {
        self.workers.len() + 1
    }

    /// The base options batches are evaluated under.
    #[must_use]
    pub fn base_options(&self) -> &HlsOptions {
        &self.shared.base
    }

    /// The pool's metrics registry. Enable it to start collecting:
    /// `pool.telemetry().set_enabled(true)`.
    #[must_use]
    pub fn telemetry(&self) -> &Registry {
        &self.shared.registry
    }

    /// One unified snapshot: everything in the registry plus the eviction
    /// cache's own counters (`cache.*`) and the pool's structural gauges
    /// (`pool.threads`, `cache.capacity_bytes` when budgeted) — appended
    /// here so every export surface (`stats`, `metrics`, exposition,
    /// `--metrics-out`) reads the same numbers from the same place.
    #[must_use]
    #[allow(clippy::cast_possible_wrap)]
    pub fn metrics_snapshot(&self) -> Snapshot {
        let mut snap = self.shared.registry.snapshot();
        let s = self.shared.cache.stats();
        snap.push_counter("cache.hits", s.hits);
        snap.push_counter("cache.coalesced", s.coalesced);
        snap.push_counter("cache.misses", s.misses);
        snap.push_counter("cache.evictions", s.evictions);
        snap.push_gauge("cache.entries", s.entries as i64);
        snap.push_gauge("cache.bytes", s.bytes as i64);
        if let Some(cap) = s.capacity_bytes {
            snap.push_gauge("cache.capacity_bytes", cap as i64);
        }
        snap.push_gauge("pool.threads", self.thread_count() as i64);
        snap.sort();
        snap
    }
}

impl Drop for EvaluatorPool {
    fn drop(&mut self) {
        {
            // Set shutdown while holding the queue lock: a worker is then
            // either before its lock (it will observe the flag) or already
            // waiting (it will get the notification) — no missed wakeup.
            let _q = self.shared.queue.lock().expect("pool queue poisoned");
            self.shared.shutdown.store(true, Ordering::Release);
            self.shared.work_ready.notify_all();
        }
        for w in self.workers.drain(..) {
            // Surface worker panics instead of hiding them — unless we are
            // already unwinding, where a double panic would abort.
            if let Err(e) = w.join() {
                if !std::thread::panicking() {
                    std::panic::resume_unwind(e);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::Engine;
    use adhls_ir::builder::DesignBuilder;
    use adhls_ir::OpKind;
    use adhls_reslib::tsmc90;

    fn point(name: &str, soft: u32, clock: u64) -> DsePoint {
        let mut b = DesignBuilder::new(name);
        let x = b.input("x", 8);
        let y = b.input("y", 8);
        let m1 = b.binop(OpKind::Mul, x, y, 8);
        let m2 = b.binop(OpKind::Mul, m1, x, 8);
        let a = b.binop(OpKind::Add, m1, m2, 16);
        b.soft_waits(soft);
        b.write("z", a);
        DsePoint {
            name: name.into(),
            design: b.finish().unwrap(),
            clock_ps: clock,
            pipeline_ii: None,
            cycles_per_item: soft + 1,
        }
    }

    fn fleet() -> Vec<DsePoint> {
        (1..=6)
            .flat_map(|soft| {
                [1100u64, 1400].map(|clock| point(&format!("p{soft}c{clock}"), soft, clock))
            })
            .collect()
    }

    #[test]
    fn pool_rows_match_serial_engine_bit_for_bit() {
        let lib = tsmc90::library();
        let pts = fleet();
        let serial = Engine::new(&lib, HlsOptions::default())
            .evaluate_serial(&pts)
            .unwrap();
        let pool = EvaluatorPool::new(
            tsmc90::library(),
            HlsOptions::default(),
            PoolOptions {
                threads: 4,
                ..Default::default()
            },
        );
        let r = pool.evaluate(&pts).unwrap();
        assert_eq!(r.rows, serial.rows);
        assert_eq!(r.workers, 4);
    }

    #[test]
    fn single_thread_pool_works_without_background_workers() {
        let pool = EvaluatorPool::new(
            tsmc90::library(),
            HlsOptions::default(),
            PoolOptions {
                threads: 1,
                ..Default::default()
            },
        );
        assert_eq!(pool.thread_count(), 1);
        let r = pool.evaluate(&fleet()).unwrap();
        assert_eq!(r.rows.len(), 12);
    }

    #[test]
    fn cache_persists_across_batches() {
        let pool = EvaluatorPool::new(
            tsmc90::library(),
            HlsOptions::default(),
            PoolOptions {
                threads: 3,
                ..Default::default()
            },
        );
        let pts = fleet();
        let first = pool.evaluate(&pts).unwrap();
        assert_eq!(first.cache_hits, 0);
        let second = pool.evaluate(&pts).unwrap();
        assert_eq!(second.cache_hits, pts.len() as u64);
        assert_eq!(first.rows, second.rows);
        assert_eq!(pool.cache_len(), pts.len());
    }

    #[test]
    fn strict_failure_propagates_and_skip_policy_skips() {
        // 1 ps clock: nothing fits — guaranteed infeasible.
        let bad = point("bad", 0, 1);
        let good = point("good", 3, 1400);
        let strict = EvaluatorPool::new(
            tsmc90::library(),
            HlsOptions::default(),
            PoolOptions {
                threads: 2,
                ..Default::default()
            },
        );
        assert!(strict.evaluate(&[good.clone(), bad.clone()]).is_err());
        let lenient = EvaluatorPool::new(
            tsmc90::library(),
            HlsOptions::default(),
            PoolOptions {
                threads: 2,
                skip_infeasible: true,
                ..Default::default()
            },
        );
        let r = lenient.evaluate(&[good, bad]).unwrap();
        assert_eq!(r.rows.len(), 1);
        assert_eq!(r.skipped, vec![("bad".into(), r.skipped[0].1.clone())]);
    }

    #[test]
    fn empty_batch_completes_immediately() {
        let pool = EvaluatorPool::new(
            tsmc90::library(),
            HlsOptions::default(),
            PoolOptions {
                threads: 2,
                ..Default::default()
            },
        );
        let r = pool.evaluate(&[]).unwrap();
        assert!(r.rows.is_empty());
        assert!(r.skipped.is_empty());
    }

    #[test]
    fn completed_batches_are_retired_from_the_queue() {
        // With no background workers, only the submitter can retire its
        // batch; a long-lived pool must not accumulate finished batches.
        let pool = EvaluatorPool::new(
            tsmc90::library(),
            HlsOptions::default(),
            PoolOptions {
                threads: 1,
                ..Default::default()
            },
        );
        let pts = fleet();
        for _ in 0..3 {
            pool.evaluate(&pts).unwrap();
            assert_eq!(
                pool.shared.queue.lock().unwrap().len(),
                0,
                "finished batch left in the queue"
            );
        }
    }

    #[test]
    fn telemetry_collects_pipeline_and_pool_metrics() {
        let pool = EvaluatorPool::new(
            tsmc90::library(),
            HlsOptions::default(),
            PoolOptions {
                threads: 2,
                ..Default::default()
            },
        );
        pool.telemetry().set_enabled(true);
        let pts = fleet();
        let r = pool.evaluate(&pts).unwrap();
        let snap = pool.metrics_snapshot();
        // Pipeline phases ran through the installed registry: each point
        // runs HLS twice (conventional + slack-based).
        let schedules = snap.histogram("pipeline.schedule").expect("phase timing");
        assert_eq!(schedules.count, 2 * pts.len() as u64);
        assert_eq!(
            snap.histogram("pipeline.evaluate").map(|h| h.count),
            Some(pts.len() as u64)
        );
        // Batch accounting and the unified cache counters.
        assert_eq!(snap.counter("pool.batches"), Some(1));
        assert_eq!(snap.counter("pool.points"), Some(pts.len() as u64));
        assert_eq!(
            snap.histogram("pool.batch.start_to_done_us")
                .map(|h| h.count),
            Some(1)
        );
        assert_eq!(snap.counter("cache.misses"), Some(pts.len() as u64));
        assert_eq!(snap.gauge("pool.threads"), Some(2));
        assert_eq!(snap.gauge("pool.queue_depth"), Some(0));
        // Telemetry observes, never steers: rows match the disabled pool.
        let quiet = EvaluatorPool::new(
            tsmc90::library(),
            HlsOptions::default(),
            PoolOptions {
                threads: 2,
                ..Default::default()
            },
        );
        assert_eq!(quiet.evaluate(&pts).unwrap().rows, r.rows);
        assert!(quiet.metrics_snapshot().counter("pool.batches").is_none());
    }

    #[test]
    fn mixed_mode_batches_share_one_pool_without_aliasing() {
        // One pool, three modes over the same grid: rows must come from the
        // right evaluator (recover rows report the recovered binding, full
        // rows the slack flow) and repeats must hit per mode.
        let pool = EvaluatorPool::new(
            tsmc90::library(),
            HlsOptions::default(),
            PoolOptions {
                threads: 2,
                ..Default::default()
            },
        );
        let pts = fleet();
        let full = pool.evaluate_mode(&pts, PointMode::Full).unwrap();
        let rec = pool.evaluate_mode(&pts, PointMode::Recover).unwrap();
        assert_eq!(rec.cache_hits, 0, "modes never alias in the cache");
        for (f, r) in full.rows.iter().zip(&rec.rows) {
            assert_eq!(f.a_conv, r.a_conv);
            assert!(r.a_slack <= r.a_conv);
        }
        let rec2 = pool.evaluate_mode(&pts, PointMode::Recover).unwrap();
        assert_eq!(rec2.cache_hits, pts.len() as u64);
        assert_eq!(rec2.rows, rec.rows);
    }

    #[test]
    fn concurrent_submitters_share_one_pool() {
        let pool = Arc::new(EvaluatorPool::new(
            tsmc90::library(),
            HlsOptions::default(),
            PoolOptions {
                threads: 4,
                ..Default::default()
            },
        ));
        let lib = tsmc90::library();
        let pts = fleet();
        let reference = Engine::new(&lib, HlsOptions::default())
            .evaluate_serial(&pts)
            .unwrap();
        std::thread::scope(|scope| {
            let handles: Vec<_> = (0..4)
                .map(|_| {
                    let pool = Arc::clone(&pool);
                    let pts = pts.clone();
                    scope.spawn(move || pool.evaluate(&pts).unwrap())
                })
                .collect();
            for h in handles {
                assert_eq!(h.join().unwrap().rows, reference.rows);
            }
        });
    }
}
