//! `adhls serve` — a long-lived exploration daemon over one shared
//! [`EvaluatorPool`](crate::pool::EvaluatorPool).
//!
//! The paper's exhaustive clock/latency tradeoff sweeps only pay off at
//! scale when one process can serve many exploration requests against a
//! shared cache. This module tree is that process:
//!
//! * [`protocol`] — the line-delimited JSON wire format: `sweep`,
//!   `refine`, `stats`, `metrics`, `ping`, `shutdown` requests; streamed `round`
//!   progress events; terminal `result` messages whose row arrays are
//!   byte-compatible with the file exporters,
//! * [`session`] — request dispatch onto the pool, per-connection
//!   threads, and the TCP / reader-writer (stdio) front-ends,
//! * [`eviction`] — cache lifecycle for long-lived processes: a byte
//!   budget with per-shard cost-aware LRU eviction, plus in-flight
//!   coalescing so concurrent requests for the same cell run HLS once,
//! * [`worker`] — worker backends for multi-worker serving: the
//!   [`WorkerLink`] transport trait with in-process (pipe + thread) and
//!   child-process (TCP) implementations,
//! * [`router`] — the multi-worker front-end: consistent-hash routing of
//!   requests across workers (so each worker's cache shard stays warm),
//!   fault recovery by respawn/reassignment, `cancel` forwarding,
//!   queue-cap backpressure, and cross-worker `stats`/`metrics`
//!   aggregation.
//!
//! Determinism carries through from the pool: a request's rows and front
//! are bit-identical to a direct serial [`Engine`](crate::engine::Engine)
//! run of the same points, no matter how many clients are connected, how
//! the cache evicts, or which worker evaluated what.
//!
//! See `docs/PROTOCOL.md` for the wire format and `docs/ARCHITECTURE.md`
//! for the request lifecycle.

pub mod eviction;
pub mod protocol;
pub mod router;
pub mod session;
pub mod worker;

pub use eviction::{CacheStats, EvictingCache, Outcome};
pub use protocol::{Command, WorkloadSpec};
pub use router::{Router, RouterOptions};
pub use session::{
    refine_spaces, routing_fingerprint, sweep_points, sweep_spaces, validate_spec_constraints,
    workload_grid, BuildFn, Server,
};
pub use worker::{
    in_process_factory, spawn_process_worker, WorkerFactory, WorkerGuard, WorkerHandle, WorkerLink,
};
