//! Sweep generators: expand a workload over clock × budget × pipelining
//! grids into [`DsePoint`] fleets.
//!
//! A [`SweepGrid`] is the cartesian product of three axes; [`expand`]
//! instantiates the workload once per cell via a caller-supplied builder
//! (which typically bakes the latency budget into the design as soft
//! states, the way `adhls_workloads` constructors do). Point names encode
//! the cell (`prefix-c<clock>-l<cycles>[-ii<n>]`) so rows stay
//! self-describing through export and reporting.
//!
//! [`expand`]: SweepGrid::expand

use adhls_core::dse::DsePoint;
use adhls_ir::{Design, Error, Result};

/// One cell of the sweep grid, handed to the design builder.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SweepCell {
    /// Clock period in picoseconds.
    pub clock_ps: u64,
    /// Latency budget in cycles.
    pub cycles: u32,
    /// Pipeline initiation interval (`None` = sequential).
    pub pipeline_ii: Option<u32>,
}

/// A clock × cycles × pipelining grid.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SweepGrid {
    clocks_ps: Vec<u64>,
    cycles: Vec<u32>,
    pipeline: Vec<Option<u32>>,
}

impl Default for SweepGrid {
    fn default() -> Self {
        SweepGrid::new()
    }
}

impl SweepGrid {
    /// An empty grid (sequential-only until axes are set).
    #[must_use]
    pub fn new() -> Self {
        SweepGrid {
            clocks_ps: Vec::new(),
            cycles: Vec::new(),
            pipeline: vec![None],
        }
    }

    /// Sets the clock axis.
    #[must_use]
    pub fn clocks_ps(mut self, clocks: impl IntoIterator<Item = u64>) -> Self {
        self.clocks_ps = clocks.into_iter().collect();
        self
    }

    /// Sets the latency-budget axis.
    #[must_use]
    pub fn cycles(mut self, cycles: impl IntoIterator<Item = u32>) -> Self {
        self.cycles = cycles.into_iter().collect();
        self
    }

    /// Sets the pipelining axis (`None` = sequential, `Some(ii)` =
    /// pipelined at that initiation interval).
    #[must_use]
    pub fn pipeline_modes(mut self, modes: impl IntoIterator<Item = Option<u32>>) -> Self {
        self.pipeline = modes.into_iter().collect();
        self
    }

    /// The clock axis, as set.
    #[must_use]
    pub fn clock_axis(&self) -> &[u64] {
        &self.clocks_ps
    }

    /// The latency-budget axis, as set.
    #[must_use]
    pub fn cycles_axis(&self) -> &[u32] {
        &self.cycles
    }

    /// The pipelining axis, as set.
    #[must_use]
    pub fn pipeline_axis(&self) -> &[Option<u32>] {
        &self.pipeline
    }

    /// Number of grid cells, or `None` when the product overflows `usize`
    /// (three multi-million-element axes): such a grid cannot be
    /// materialized, and a wrapped count would silently claim it is tiny.
    #[must_use]
    pub fn checked_len(&self) -> Option<usize> {
        self.clocks_ps
            .len()
            .checked_mul(self.cycles.len())?
            .checked_mul(self.pipeline.len())
    }

    /// Number of grid cells, saturating at `usize::MAX` when the true count
    /// overflows (use [`SweepGrid::checked_len`] to detect that case; the
    /// old wrapping multiply reported a bogus small count instead).
    #[must_use]
    pub fn len(&self) -> usize {
        self.checked_len().unwrap_or(usize::MAX)
    }

    /// True when any axis is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.clocks_ps.is_empty() || self.cycles.is_empty() || self.pipeline.is_empty()
    }

    /// All cells in deterministic (clock-major, then cycles, then
    /// pipelining) order. Only call on grids whose
    /// [`checked_len`](SweepGrid::checked_len) is `Some` — [`expand`]
    /// guards this for you.
    ///
    /// [`expand`]: SweepGrid::expand
    #[must_use]
    pub fn cells(&self) -> Vec<SweepCell> {
        let mut out = Vec::with_capacity(self.checked_len().unwrap_or(0));
        for &clock_ps in &self.clocks_ps {
            for &cycles in &self.cycles {
                for &pipeline_ii in &self.pipeline {
                    out.push(SweepCell {
                        clock_ps,
                        cycles,
                        pipeline_ii,
                    });
                }
            }
        }
        out
    }

    /// Expands the grid into design points, building the workload once per
    /// cell.
    ///
    /// `cycles_per_item` is the initiation interval for pipelined cells and
    /// the latency budget otherwise (the same convention as the paper's
    /// Table 4 sweep).
    ///
    /// # Errors
    ///
    /// [`Error::Capacity`] when the cell count overflows `usize` — the grid
    /// could never be materialized, and the old wrapping count silently
    /// expanded the wrong (tiny) number of cells.
    pub fn expand<F>(&self, prefix: &str, mut build: F) -> Result<Vec<DsePoint>>
    where
        F: FnMut(&SweepCell) -> Design,
    {
        if self.checked_len().is_none() {
            return Err(Error::Capacity(format!(
                "sweep grid {} x {} x {} cells overflows the machine's address space",
                self.clocks_ps.len(),
                self.cycles.len(),
                self.pipeline.len()
            )));
        }
        Ok(self
            .cells()
            .iter()
            .map(|cell| {
                DsePoint::grid(
                    prefix,
                    build(cell),
                    cell.clock_ps,
                    cell.cycles,
                    cell.pipeline_ii,
                )
            })
            .collect())
    }
}

/// `prefix-c<clock>-l<cycles>[-ii<n>]` (delegates to the one shared
/// definition in [`DsePoint::grid_name`]).
#[must_use]
pub fn cell_name(prefix: &str, cell: &SweepCell) -> String {
    DsePoint::grid_name(prefix, cell.clock_ps, cell.cycles, cell.pipeline_ii)
}

#[cfg(test)]
mod tests {
    use super::*;
    use adhls_ir::builder::DesignBuilder;
    use adhls_ir::OpKind;

    fn tiny(cycles: u32) -> Design {
        let mut b = DesignBuilder::new("tiny");
        let x = b.input("x", 8);
        let m = b.binop(OpKind::Mul, x, x, 8);
        b.soft_waits(cycles.saturating_sub(1));
        b.write("z", m);
        b.finish().unwrap()
    }

    #[test]
    fn grid_is_the_full_cartesian_product() {
        let g = SweepGrid::new()
            .clocks_ps([1000, 2000])
            .cycles([2, 3, 4])
            .pipeline_modes([None, Some(1)]);
        assert_eq!(g.len(), 12);
        let pts = g.expand("t", |cell| tiny(cell.cycles)).unwrap();
        assert_eq!(pts.len(), 12);
        // Deterministic, self-describing names; no duplicates.
        let mut names: Vec<&str> = pts.iter().map(|p| p.name.as_str()).collect();
        assert!(names.contains(&"t-c1000-l2"));
        assert!(names.contains(&"t-c2000-l4-ii1"));
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), 12);
    }

    #[test]
    fn cycles_per_item_follows_pipelining() {
        let g = SweepGrid::new()
            .clocks_ps([1000])
            .cycles([4])
            .pipeline_modes([None, Some(2)]);
        let pts = g.expand("t", |cell| tiny(cell.cycles)).unwrap();
        assert_eq!(pts[0].cycles_per_item, 4);
        assert_eq!(pts[1].cycles_per_item, 2);
    }

    #[test]
    fn empty_axis_means_empty_expansion() {
        let g = SweepGrid::new().cycles([2, 3]);
        assert!(g.is_empty());
        assert!(g.expand("t", |cell| tiny(cell.cycles)).unwrap().is_empty());
    }

    #[test]
    fn len_saturates_and_expand_errors_on_overflow() {
        // Three 2^22-element axes make a 2^66-cell grid: the old wrapping
        // multiply reported a bogus small count in release and panicked in
        // debug. ~80 MiB of axis storage buys the regression coverage.
        let n = 1usize << 22;
        let g = SweepGrid::new()
            .clocks_ps(vec![1000u64; n])
            .cycles(vec![4u32; n])
            .pipeline_modes(vec![None; n]);
        assert_eq!(g.checked_len(), None, "2^66 cells must not wrap");
        assert_eq!(g.len(), usize::MAX, "len saturates instead of wrapping");
        assert!(!g.is_empty());
        let err = g.expand("t", |cell| tiny(cell.cycles)).unwrap_err();
        assert!(
            err.to_string().contains("capacity error"),
            "expected a capacity error, got: {err}"
        );
    }
}
