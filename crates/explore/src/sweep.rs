//! Sweep generators: expand a workload over clock × budget × pipelining
//! grids into [`DsePoint`] fleets.
//!
//! A [`SweepGrid`] is the cartesian product of three axes; [`expand`]
//! instantiates the workload once per cell via a caller-supplied builder
//! (which typically bakes the latency budget into the design as soft
//! states, the way `adhls_workloads` constructors do). Point names encode
//! the cell (`prefix-c<clock>-l<cycles>[-ii<n>]`) so rows stay
//! self-describing through export and reporting.
//!
//! [`expand`]: SweepGrid::expand

use adhls_core::dse::DsePoint;
use adhls_ir::Design;

/// One cell of the sweep grid, handed to the design builder.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SweepCell {
    /// Clock period in picoseconds.
    pub clock_ps: u64,
    /// Latency budget in cycles.
    pub cycles: u32,
    /// Pipeline initiation interval (`None` = sequential).
    pub pipeline_ii: Option<u32>,
}

/// A clock × cycles × pipelining grid.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SweepGrid {
    clocks_ps: Vec<u64>,
    cycles: Vec<u32>,
    pipeline: Vec<Option<u32>>,
}

impl Default for SweepGrid {
    fn default() -> Self {
        SweepGrid::new()
    }
}

impl SweepGrid {
    /// An empty grid (sequential-only until axes are set).
    #[must_use]
    pub fn new() -> Self {
        SweepGrid {
            clocks_ps: Vec::new(),
            cycles: Vec::new(),
            pipeline: vec![None],
        }
    }

    /// Sets the clock axis.
    #[must_use]
    pub fn clocks_ps(mut self, clocks: impl IntoIterator<Item = u64>) -> Self {
        self.clocks_ps = clocks.into_iter().collect();
        self
    }

    /// Sets the latency-budget axis.
    #[must_use]
    pub fn cycles(mut self, cycles: impl IntoIterator<Item = u32>) -> Self {
        self.cycles = cycles.into_iter().collect();
        self
    }

    /// Sets the pipelining axis (`None` = sequential, `Some(ii)` =
    /// pipelined at that initiation interval).
    #[must_use]
    pub fn pipeline_modes(mut self, modes: impl IntoIterator<Item = Option<u32>>) -> Self {
        self.pipeline = modes.into_iter().collect();
        self
    }

    /// Number of grid cells.
    #[must_use]
    pub fn len(&self) -> usize {
        self.clocks_ps.len() * self.cycles.len() * self.pipeline.len()
    }

    /// True when any axis is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// All cells in deterministic (clock-major, then cycles, then
    /// pipelining) order.
    #[must_use]
    pub fn cells(&self) -> Vec<SweepCell> {
        let mut out = Vec::with_capacity(self.len());
        for &clock_ps in &self.clocks_ps {
            for &cycles in &self.cycles {
                for &pipeline_ii in &self.pipeline {
                    out.push(SweepCell {
                        clock_ps,
                        cycles,
                        pipeline_ii,
                    });
                }
            }
        }
        out
    }

    /// Expands the grid into design points, building the workload once per
    /// cell.
    ///
    /// `cycles_per_item` is the initiation interval for pipelined cells and
    /// the latency budget otherwise (the same convention as the paper's
    /// Table 4 sweep).
    #[must_use]
    pub fn expand<F>(&self, prefix: &str, mut build: F) -> Vec<DsePoint>
    where
        F: FnMut(&SweepCell) -> Design,
    {
        self.cells()
            .iter()
            .map(|cell| {
                DsePoint::grid(
                    prefix,
                    build(cell),
                    cell.clock_ps,
                    cell.cycles,
                    cell.pipeline_ii,
                )
            })
            .collect()
    }
}

/// `prefix-c<clock>-l<cycles>[-ii<n>]` (delegates to the one shared
/// definition in [`DsePoint::grid_name`]).
#[must_use]
pub fn cell_name(prefix: &str, cell: &SweepCell) -> String {
    DsePoint::grid_name(prefix, cell.clock_ps, cell.cycles, cell.pipeline_ii)
}

#[cfg(test)]
mod tests {
    use super::*;
    use adhls_ir::builder::DesignBuilder;
    use adhls_ir::OpKind;

    fn tiny(cycles: u32) -> Design {
        let mut b = DesignBuilder::new("tiny");
        let x = b.input("x", 8);
        let m = b.binop(OpKind::Mul, x, x, 8);
        b.soft_waits(cycles.saturating_sub(1));
        b.write("z", m);
        b.finish().unwrap()
    }

    #[test]
    fn grid_is_the_full_cartesian_product() {
        let g = SweepGrid::new()
            .clocks_ps([1000, 2000])
            .cycles([2, 3, 4])
            .pipeline_modes([None, Some(1)]);
        assert_eq!(g.len(), 12);
        let pts = g.expand("t", |cell| tiny(cell.cycles));
        assert_eq!(pts.len(), 12);
        // Deterministic, self-describing names; no duplicates.
        let mut names: Vec<&str> = pts.iter().map(|p| p.name.as_str()).collect();
        assert!(names.contains(&"t-c1000-l2"));
        assert!(names.contains(&"t-c2000-l4-ii1"));
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), 12);
    }

    #[test]
    fn cycles_per_item_follows_pipelining() {
        let g = SweepGrid::new()
            .clocks_ps([1000])
            .cycles([4])
            .pipeline_modes([None, Some(2)]);
        let pts = g.expand("t", |cell| tiny(cell.cycles));
        assert_eq!(pts[0].cycles_per_item, 4);
        assert_eq!(pts[1].cycles_per_item, 2);
    }

    #[test]
    fn empty_axis_means_empty_expansion() {
        let g = SweepGrid::new().cycles([2, 3]);
        assert!(g.is_empty());
        assert!(g.expand("t", |cell| tiny(cell.cycles)).is_empty());
    }
}
