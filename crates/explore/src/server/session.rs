//! Request dispatch and connection handling for the exploration server.
//!
//! A [`Server`] wraps one [`EvaluatorPool`]; every connection (TCP socket
//! or an arbitrary reader/writer pair, which is how tests and `adhls serve
//! --stdio` drive it) pushes request lines through [`Server::handle_line`].
//! Concurrent connections each run in their own thread, but all of them
//! submit to the same pool — so their evaluations share worker threads,
//! the cross-request cache, and in-flight coalescing, and two clients
//! refining overlapping grids pay for each cell once.
//!
//! The request lifecycle (see `docs/ARCHITECTURE.md` for the diagram):
//! parse ([`crate::server::protocol`]) → build the workload grid (shared
//! with the CLI, so axes validate identically everywhere) → evaluate
//! through the pool, streaming `round` events for adaptive requests → one
//! terminal `result` line.

use crate::constraint::validate_constraints;
use crate::fingerprint::design_fingerprint;
use crate::pareto::{pareto_front_in_constrained, ObjectiveSpace};
use crate::pool::EvaluatorPool;
use crate::refine::{refine_multi_with_progress, refine_with_progress, CancelToken, RefineOptions};
use crate::server::protocol::{self, Command, WorkloadSpec};
use crate::sweep::{SweepCell, SweepGrid};
use adhls_core::dse::DsePoint;
use adhls_core::json::Value;
use adhls_ir::{frontend, Design};
use adhls_telemetry::Snapshot;
use adhls_workloads::{idct, interpolation, matmul, sweep};
use std::collections::HashMap;
use std::io::{BufRead, BufReader, Read, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// A per-cell design builder, boxed so grids for different workloads share
/// one type (and `Send` so refinements can run on pool threads).
pub type BuildFn = Box<dyn FnMut(&SweepCell) -> Design + Send>;

/// Largest matmul dimension a request may ask for (op count grows as n³;
/// 64 is already a ~500k-multiply design).
const MAX_MATMUL_DIM: usize = 64;

/// Largest random fleet a single request may ask for. Bounds what one
/// remote request can queue on the shared pool — a billion-point fleet
/// would be built in memory before evaluation even starts, starving every
/// other connection.
const MAX_RANDOM_COUNT: usize = 10_000;

/// The objective space(s) a `sweep` request's fronts are extracted in:
/// the requested one(s), defaulting to every axis
/// ([`ObjectiveSpace::full`] — what sweep fronts were before spaces were
/// selectable). One definition for the wire and `adhls explore`, so both
/// surfaces default alike.
#[must_use]
pub fn sweep_spaces(spec: &WorkloadSpec) -> Vec<ObjectiveSpace> {
    spec.objectives
        .clone()
        .unwrap_or_else(|| vec![ObjectiveSpace::full()])
}

/// The objective plane(s) a `refine` request steers through: the
/// requested one(s), defaulting to the paper's (area, latency) tradeoff
/// plane ([`ObjectiveSpace::tradeoff`]). One definition for the wire and
/// `adhls explore --adaptive`, including the validation. More than one
/// plane selects the one-pass multi-plane driver
/// ([`crate::refine::refine_multi`]).
///
/// # Errors
///
/// A message naming the `objectives` field when any plane has fewer than
/// the two axes a steering plane needs (the library-level
/// [`crate::refine::refine`] enforces the same bound as a backstop).
pub fn refine_spaces(spec: &WorkloadSpec) -> Result<Vec<ObjectiveSpace>, String> {
    let spaces = spec
        .objectives
        .clone()
        .unwrap_or_else(|| vec![ObjectiveSpace::default()]);
    for space in &spaces {
        if space.axes().len() < 2 {
            return Err(format!(
                "objectives: adaptive refinement steers a two-axis plane; `{space}` has only \
                 one axis (pick two, e.g. `area,power`)"
            ));
        }
    }
    Ok(spaces)
}

/// Validates the request's constraints against the active objective
/// space(s): every bound must hit an axis at least one space selects.
/// One definition for the wire and the CLI (whose error mapper re-spells
/// the `constraints:` prefix as `--constraint:`).
///
/// # Errors
///
/// A message naming the `constraints` field and the offending bound.
pub fn validate_spec_constraints(
    spec: &WorkloadSpec,
    spaces: &[ObjectiveSpace],
) -> Result<(), String> {
    validate_constraints(&spec.constraints, &crate::pareto::axis_union(spaces))
        .map_err(|e| format!("constraints: {e}"))
}

fn validate_axes(spec: &WorkloadSpec) -> Result<(), String> {
    if spec.clocks.as_deref().is_some_and(|c| c.contains(&0)) {
        return Err("clocks: clock periods must be >= 1 ps".into());
    }
    if spec.cycles.as_deref().is_some_and(|c| c.contains(&0)) {
        return Err("cycles: latency budgets must be >= 1 cycle".into());
    }
    if spec
        .pipeline
        .as_deref()
        .is_some_and(|m| m.contains(&Some(0)))
    {
        return Err("pipeline: initiation intervals must be >= 1".into());
    }
    if spec.dim.is_some_and(|n| n == 0 || n > MAX_MATMUL_DIM) {
        return Err(format!("dim: must be 1..={MAX_MATMUL_DIM}"));
    }
    if spec.count.is_some_and(|n| n > MAX_RANDOM_COUNT) {
        return Err(format!(
            "count: at most {MAX_RANDOM_COUNT} random points per request"
        ));
    }
    Ok(())
}

/// Expands a [`WorkloadSpec`] into the point fleet a `sweep` evaluates —
/// the same named workloads, default axes, and validation the CLI's
/// `adhls explore` uses (the CLI delegates here).
///
/// # Errors
///
/// A message naming the offending field.
pub fn sweep_points(spec: &WorkloadSpec) -> Result<Vec<DsePoint>, String> {
    validate_axes(spec)?;
    if let Some(source) = &spec.dsl {
        if spec.workload.is_some() {
            return Err("pass either `workload` or `dsl`, not both".into());
        }
        return dsl_points(spec, source);
    }
    let Some(workload) = spec.workload.as_deref() else {
        return Err("a sweep needs `workload` or `dsl`".into());
    };
    let clocks = spec.clocks.clone();
    let cycles = spec.cycles.clone();
    let modes = spec.pipeline.clone();
    let pts = match workload {
        "interpolation" | "interp" => match (clocks, cycles) {
            (None, None) => sweep::interpolation_default(),
            (c, l) => sweep::interpolation_sweep(
                &c.unwrap_or_else(|| vec![1100, 1400, 1800, 2400]),
                &l.unwrap_or_else(|| vec![3, 4, 6]),
            ),
        },
        "idct" => sweep::idct_sweep(
            &clocks.unwrap_or_else(|| vec![2200, 3000]),
            &cycles.unwrap_or_else(|| vec![12, 16, 24, 32]),
            &modes.unwrap_or_else(|| vec![None]),
        ),
        "idct-table4" | "table4" => sweep::idct_table4(),
        "fir" => sweep::fir_sweep(
            clocks
                .as_deref()
                .and_then(|c| c.first().copied())
                .unwrap_or(2200),
            &[2, 4, 8],
            &cycles.unwrap_or_else(|| vec![2, 3, 4]),
        ),
        "matmul" => sweep::matmul_sweep(
            spec.dim.unwrap_or(3),
            &clocks.unwrap_or_else(|| vec![2200, 3000]),
            &cycles.unwrap_or_else(|| vec![4, 6, 8]),
        ),
        "random" => sweep::random_fleet(spec.count.unwrap_or(12), spec.seed.unwrap_or(42)),
        other => {
            return Err(format!(
                "unknown workload `{other}` (interpolation | idct | idct-table4 | \
                 fir | matmul | random)"
            ))
        }
    };
    Ok(pts)
}

fn dsl_points(spec: &WorkloadSpec, source: &str) -> Result<Vec<DsePoint>, String> {
    let design = frontend::compile(source).map_err(|e| format!("dsl: {e}"))?;
    let cycles = DsePoint::states_per_item(&design);
    let clocks = spec
        .clocks
        .clone()
        .unwrap_or_else(|| vec![1500, 2000, 2600, 3200]);
    let stem = spec
        .dsl_prefix
        .clone()
        .unwrap_or_else(|| design.cfg.name().to_string());
    Ok(clocks
        .into_iter()
        .map(|clock_ps| DsePoint {
            name: format!("{stem}-c{clock_ps}"),
            design: design.clone(),
            clock_ps,
            pipeline_ii: None,
            cycles_per_item: cycles,
        })
        .collect())
}

/// The stable routing key the multi-worker router consistent-hashes a
/// request's spec with: the [`design_fingerprint`] of the spec's first
/// expanded point. Every request over the same workload family lands on
/// the same worker, so that worker's point cache and incremental prefix
/// artifacts stay warm for the whole grid — and the key survives worker
/// restarts, because it depends only on the spec.
///
/// # Errors
///
/// The same spec-validation message the serving worker would produce
/// (callers route such requests anywhere; the worker repeats the
/// validation and answers the client with the error).
pub fn routing_fingerprint(spec: &WorkloadSpec) -> Result<u64, String> {
    let points = sweep_points(spec)?;
    Ok(points.first().map_or(0, |p| design_fingerprint(&p.design)))
}

/// The grid, point-name prefix, and cell builder a `refine` request (or
/// `adhls explore --adaptive`, which delegates here) refines.
///
/// # Errors
///
/// A message naming the offending field; workloads without a grid builder
/// (random fleets, the fixed Table-4 points, DSL designs with their own
/// state structure) are rejected.
pub fn workload_grid(spec: &WorkloadSpec) -> Result<(SweepGrid, String, BuildFn), String> {
    validate_axes(spec)?;
    if spec.dsl.is_some() {
        return Err("adaptive refinement explores workload grids, not DSL designs".into());
    }
    let Some(workload) = spec.workload.as_deref() else {
        return Err("a refine request needs `workload`".into());
    };
    let clocks = spec.clocks.clone();
    let cycles = spec.cycles.clone();
    let modes = spec.pipeline.clone();
    match workload {
        "interpolation" | "interp" => {
            if modes.is_some() {
                return Err("pipeline: only the idct workload has a pipelining axis".into());
            }
            let grid = SweepGrid::new()
                .clocks_ps(clocks.unwrap_or_else(|| vec![1100, 1400, 1800, 2400]))
                .cycles(cycles.unwrap_or_else(|| vec![3, 4, 6]));
            let build = |cell: &SweepCell| {
                let cfg = interpolation::InterpolationConfig {
                    cycles: cell.cycles,
                    ..Default::default()
                };
                interpolation::build(&cfg).0
            };
            Ok((grid, "interp".into(), Box::new(build)))
        }
        "idct" => {
            let grid = SweepGrid::new()
                .clocks_ps(clocks.unwrap_or_else(|| vec![2200, 3000]))
                .cycles(cycles.unwrap_or_else(|| vec![12, 16, 24, 32]))
                .pipeline_modes(modes.unwrap_or_else(|| vec![None]));
            let build = |cell: &SweepCell| {
                idct::build_2d(&idct::IdctConfig {
                    cycles: cell.cycles,
                    pipelined: cell.pipeline_ii,
                })
            };
            Ok((grid, "idct".into(), Box::new(build)))
        }
        "matmul" => {
            if modes.is_some() {
                return Err("pipeline: only the idct workload has a pipelining axis".into());
            }
            let n = spec.dim.unwrap_or(3);
            let grid = SweepGrid::new()
                .clocks_ps(clocks.unwrap_or_else(|| vec![2200, 3000]))
                .cycles(cycles.unwrap_or_else(|| vec![4, 6, 8]));
            let build = move |cell: &SweepCell| {
                matmul::build(&matmul::MatmulConfig {
                    n,
                    cycles: cell.cycles,
                    ..Default::default()
                })
            };
            // The prefix must match the non-adaptive sweep's naming so rows
            // stay cross-referenceable; matmul encodes its dimension there.
            Ok((grid, format!("mm{n}"), Box::new(build)))
        }
        other => Err(format!(
            "workload `{other}` has no adaptive grid (interpolation | idct | matmul)"
        )),
    }
}

/// A long-lived exploration server multiplexing any number of client
/// connections onto one [`EvaluatorPool`].
pub struct Server {
    pool: EvaluatorPool,
    requests: AtomicU64,
    shutdown: AtomicBool,
    /// Construction time, for `stats`/`metrics` uptime reporting.
    started: Instant,
    /// Requests slower than this (milliseconds) are logged to stderr;
    /// `0` disables slow-request logging.
    slow_ms: AtomicU64,
    /// In-flight cancellable requests, keyed by the *rendered* request
    /// `id` (so `7`, `"a1"` and `7.0` resolve exactly as the wire echoes
    /// them). A `cancel` from any connection fires the matching token;
    /// the refining request deregisters itself when it finishes.
    cancels: Mutex<HashMap<String, CancelToken>>,
}

impl std::fmt::Debug for Server {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Server")
            .field("pool", &self.pool)
            .field("requests", &self.requests)
            .finish_non_exhaustive()
    }
}

impl Server {
    /// Wraps a pool. The pool's options decide the evaluation policy for
    /// every request: worker threads, skip-infeasible, cache budget.
    ///
    /// The pool's telemetry registry is **enabled**: a long-lived server is
    /// exactly the deployment observability exists for, and the per-request
    /// overhead (a handful of atomic ops per phase) is noise next to an
    /// HLS evaluation. `stats`, the `metrics` verb, and the exposition
    /// listener all read from it.
    #[must_use]
    pub fn new(pool: EvaluatorPool) -> Self {
        pool.telemetry().set_enabled(true);
        Server {
            pool,
            requests: AtomicU64::new(0),
            shutdown: AtomicBool::new(false),
            started: Instant::now(),
            slow_ms: AtomicU64::new(0),
            cancels: Mutex::new(HashMap::new()),
        }
    }

    /// Fires the cancellation token of the in-flight request whose `id`
    /// renders as `target` renders, returning whether one was found. The
    /// cancelled refinement stops at its next round boundary; its rows and
    /// trace stay a valid prefix of the uncancelled run's.
    pub fn cancel_request(&self, target: &Value) -> bool {
        let key = target.render();
        let cancels = self.cancels.lock().expect("cancel registry poisoned");
        match cancels.get(&key) {
            Some(token) => {
                token.cancel();
                true
            }
            None => false,
        }
    }

    /// Registers a cancellable in-flight request under its rendered `id`
    /// and hands back a deregistration guard. Requests without an `id`
    /// cannot be addressed by `cancel` and are not registered.
    fn register_cancel(&self, id: Option<&Value>) -> (Option<CancelToken>, CancelGuard<'_>) {
        let Some(id) = id else {
            return (
                None,
                CancelGuard {
                    server: self,
                    key: None,
                },
            );
        };
        let token = CancelToken::new();
        let key = id.render();
        self.cancels
            .lock()
            .expect("cancel registry poisoned")
            .insert(key.clone(), token.clone());
        (
            Some(token),
            CancelGuard {
                server: self,
                key: Some(key),
            },
        )
    }

    /// The wrapped pool (e.g. to inspect cache metrics out of band).
    #[must_use]
    pub fn pool(&self) -> &EvaluatorPool {
        &self.pool
    }

    /// Logs any request taking longer than `ms` milliseconds to stderr
    /// (`0` disables, the default).
    pub fn set_slow_ms(&self, ms: u64) {
        self.slow_ms.store(ms, Ordering::Relaxed);
    }

    /// One unified snapshot of everything observable: the pool's registry
    /// and cache counters ([`EvaluatorPool::metrics_snapshot`]) plus the
    /// serve tier's own `serve.requests` counter and `serve.uptime_ms`
    /// gauge. Every export surface — the `stats` and `metrics` verbs, the
    /// exposition listener — renders from this one snapshot, so they
    /// cannot drift from each other.
    #[must_use]
    #[allow(clippy::cast_possible_truncation, clippy::cast_possible_wrap)]
    pub fn metrics_snapshot(&self) -> Snapshot {
        let mut snap = self.pool.metrics_snapshot();
        snap.push_counter("serve.requests", self.requests.load(Ordering::Relaxed));
        snap.push_gauge("serve.uptime_ms", self.started.elapsed().as_millis() as i64);
        snap.sort();
        snap
    }

    /// Asks the serve loops to wind down: [`Server::serve_tcp`] stops
    /// accepting, and connection loops exit at their next idle moment.
    pub fn request_shutdown(&self) {
        self.shutdown.store(true, Ordering::Release);
    }

    /// True once shutdown has been requested.
    #[must_use]
    pub fn is_shutting_down(&self) -> bool {
        self.shutdown.load(Ordering::Acquire)
    }

    /// Handles one request line, writing response line(s) to `out` (each
    /// flushed, so `round` events stream while the request runs). Returns
    /// `false` when the connection should close (a `shutdown` request).
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from `out`; request-level problems are
    /// reported to the client as `ok:false` result lines instead.
    pub fn handle_line(&self, line: &str, out: &mut dyn Write) -> std::io::Result<bool> {
        let line = line.trim();
        if line.is_empty() {
            return Ok(true);
        }
        // The pool registry becomes this thread's current registry for the
        // whole request, so refine-level counters (and pipeline spans from
        // the submitter's share of the work) land beside the pool's own.
        let registry = self.pool.telemetry().clone();
        let _telemetry = adhls_telemetry::install(&registry);
        let seq = self.requests.fetch_add(1, Ordering::Relaxed) + 1;
        let _in_flight = registry.gauge_guard("serve.in_flight");
        registry.counter_add("serve.bytes_read", line.len() as u64);
        let started = registry.is_enabled().then(Instant::now);
        let (id, cmd) = protocol::parse_request(line);
        let verb = cmd.as_ref().map_or("invalid", |c| c.verb());
        let handled = self.dispatch(id.as_ref(), cmd, out)?;
        out.flush()?;
        if let Some(t) = started {
            // Per-request accounting: every counted request ends in exactly
            // one `serve.request.<verb>` histogram sample and one
            // ok/errors increment — `metrics` totals reconcile with the
            // `serve.requests` counter (modulo requests still in flight).
            let us = t.elapsed().as_secs_f64() * 1e6;
            registry.observe(&format!("serve.request.{verb}"), us);
            registry.counter_add(
                if handled.ok {
                    "serve.ok"
                } else {
                    "serve.errors"
                },
                1,
            );
            let slow_ms = self.slow_ms.load(Ordering::Relaxed);
            #[allow(clippy::cast_precision_loss)]
            if slow_ms > 0 && us >= slow_ms as f64 * 1e3 {
                eprintln!(
                    "[adhls serve] slow request #{seq}: {verb} took {:.1} ms \
                     (threshold {slow_ms} ms)",
                    us / 1e3
                );
            }
        }
        Ok(handled.keep_going)
    }

    /// Runs one parsed request, writing its response line(s). Factored out
    /// of [`Server::handle_line`] so the wrapper can time the request and
    /// classify its outcome uniformly.
    fn dispatch(
        &self,
        id: Option<&adhls_core::json::Value>,
        cmd: Result<Command, String>,
        out: &mut dyn Write,
    ) -> std::io::Result<Handled> {
        let mut ok = true;
        let mut keep_going = true;
        match cmd {
            Err(msg) => {
                writeln!(out, "{}", protocol::render_error(id, &msg))?;
                ok = false;
            }
            Ok(Command::Ping) => writeln!(out, "{}", protocol::render_ok(id, "ping"))?,
            Ok(Command::Shutdown) => {
                self.request_shutdown();
                writeln!(out, "{}", protocol::render_ok(id, "shutdown"))?;
                keep_going = false;
            }
            Ok(Command::Stats) => {
                let line = protocol::render_stats(id, &self.metrics_snapshot());
                writeln!(out, "{line}")?;
            }
            Ok(Command::Metrics) => {
                let line = protocol::render_metrics(id, &self.metrics_snapshot());
                writeln!(out, "{line}")?;
            }
            Ok(Command::Cancel { target }) => {
                if self.cancel_request(&target) {
                    writeln!(out, "{}", protocol::render_cancel_result(id, &target))?;
                } else {
                    let msg = format!("no in-flight request with id {}", target.render());
                    writeln!(out, "{}", protocol::render_error(id, &msg))?;
                    ok = false;
                }
            }
            Ok(Command::Sweep(spec)) => {
                let spaces = sweep_spaces(&spec);
                let prep =
                    validate_spec_constraints(&spec, &spaces).and_then(|()| sweep_points(&spec));
                match prep {
                    Err(msg) => {
                        writeln!(out, "{}", protocol::render_error(id, &msg))?;
                        ok = false;
                    }
                    Ok(points) if points.is_empty() => {
                        writeln!(
                            out,
                            "{}",
                            protocol::render_error(id, "the sweep is empty (check clocks/cycles)")
                        )?;
                        ok = false;
                    }
                    Ok(points) => match self.pool.evaluate_mode(&points, spec.mode) {
                        Ok(result) => {
                            let planes: Vec<(ObjectiveSpace, Vec<adhls_core::dse::DseRow>)> =
                                spaces
                                    .iter()
                                    .map(|s| {
                                        (
                                            s.clone(),
                                            pareto_front_in_constrained(
                                                s,
                                                &spec.constraints,
                                                &result.rows,
                                            ),
                                        )
                                    })
                                    .collect();
                            let line = protocol::render_sweep_result(
                                id,
                                &result,
                                &planes,
                                &spec.constraints,
                            );
                            writeln!(out, "{line}")?;
                        }
                        Err(e) => {
                            let msg = format!(
                                "sweep failed: {e} (run the server with skip-infeasible \
                                 to drop such points)"
                            );
                            writeln!(out, "{}", protocol::render_error(id, &msg))?;
                            ok = false;
                        }
                    },
                }
            }
            Ok(Command::Refine {
                spec,
                budget,
                gap_tol,
                warm_front,
            }) => match workload_grid(&spec)
                .and_then(|g| refine_spaces(&spec).map(|s| (g, s)))
                .and_then(|(g, s)| validate_spec_constraints(&spec, &s).map(|()| (g, s)))
            {
                Err(msg) => {
                    writeln!(out, "{}", protocol::render_error(id, &msg))?;
                    ok = false;
                }
                Ok(((grid, _, _), _)) if grid.is_empty() => {
                    writeln!(
                        out,
                        "{}",
                        protocol::render_error(id, "the grid is empty (check clocks/cycles)")
                    )?;
                    ok = false;
                }
                Ok(((grid, prefix, build), spaces)) => {
                    let warm_start: Vec<SweepCell> = warm_front
                        .iter()
                        .filter_map(|n| DsePoint::parse_grid_name(n))
                        .map(|(clock_ps, cycles, pipeline_ii)| SweepCell {
                            clock_ps,
                            cycles,
                            pipeline_ii,
                        })
                        .collect();
                    // Register for `cancel` before the first round runs, so
                    // a cancel racing the refine's start still lands. The
                    // guard deregisters on every exit path.
                    let (cancel, _cancel_guard) = self.register_cancel(id);
                    let opts = RefineOptions {
                        budget,
                        gap_tol,
                        warm_start,
                        objectives: spaces[0].clone(),
                        constraints: spec.constraints.clone(),
                        cancel,
                        point_mode: spec.mode,
                        ..Default::default()
                    };
                    let mut stream_err: Option<std::io::Error> = None;
                    // Single plane keeps the dedicated driver (and its
                    // round events); several planes share one pass.
                    let line = {
                        let out = &mut *out;
                        let stream_err = &mut stream_err;
                        if spaces.len() == 1 {
                            refine_with_progress(&self.pool, &grid, &prefix, build, &opts, |t| {
                                if stream_err.is_none() {
                                    let line = protocol::render_round(id, t);
                                    if let Err(e) =
                                        writeln!(out, "{line}").and_then(|()| out.flush())
                                    {
                                        *stream_err = Some(e);
                                    }
                                }
                            })
                            .map(|r| {
                                if r.cancelled {
                                    adhls_telemetry::counter_add("serve.cancelled", 1);
                                }
                                protocol::render_refine_result(id, &r)
                            })
                        } else {
                            refine_multi_with_progress(
                                &self.pool,
                                &grid,
                                &prefix,
                                build,
                                &opts,
                                &spaces,
                                |t| {
                                    if stream_err.is_none() {
                                        let line = protocol::render_multi_round(id, t);
                                        if let Err(e) =
                                            writeln!(out, "{line}").and_then(|()| out.flush())
                                        {
                                            *stream_err = Some(e);
                                        }
                                    }
                                },
                            )
                            .map(|r| {
                                if r.cancelled {
                                    adhls_telemetry::counter_add("serve.cancelled", 1);
                                }
                                protocol::render_refine_multi_result(id, &r)
                            })
                        }
                    };
                    if let Some(e) = stream_err {
                        return Err(e);
                    }
                    match line {
                        Ok(line) => writeln!(out, "{line}")?,
                        Err(e) => {
                            let msg = format!(
                                "refinement failed: {e} (run the server with \
                                 skip-infeasible to drop unschedulable cells)"
                            );
                            writeln!(out, "{}", protocol::render_error(id, &msg))?;
                            ok = false;
                        }
                    }
                }
            },
        }
        Ok(Handled { keep_going, ok })
    }

    /// Serves one connection from any reader/writer pair until EOF or a
    /// `shutdown` request — the stdio transport, and what tests drive with
    /// in-memory buffers. Request lines are capped at
    /// [`MAX_REQUEST_BYTES`]; an oversized line gets an error response and
    /// closes the connection (the line boundary is lost, so resyncing the
    /// protocol is not possible).
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from either side.
    pub fn serve_connection(
        &self,
        mut reader: impl BufRead,
        mut writer: impl Write,
    ) -> std::io::Result<()> {
        let mut buf = Vec::new();
        loop {
            match fill_line(&mut reader, &mut buf)? {
                LineStatus::Eof => return Ok(()),
                LineStatus::TooLong => return self.refuse_oversized(&mut writer),
                LineStatus::Complete => {
                    let keep_going = self.handle_buffered_line(&mut buf, &mut writer)?;
                    if !keep_going {
                        return Ok(());
                    }
                }
            }
        }
    }

    /// Dispatches one complete request line accumulated in `buf`, clearing
    /// it for the next line.
    fn handle_buffered_line(
        &self,
        buf: &mut Vec<u8>,
        writer: &mut dyn Write,
    ) -> std::io::Result<bool> {
        let keep_going = match std::str::from_utf8(buf) {
            Ok(line) => self.handle_line(line, writer)?,
            Err(_) => {
                self.count_unparseable_request(buf.len());
                writeln!(
                    writer,
                    "{}",
                    protocol::render_error(None, "request line is not valid UTF-8")
                )?;
                writer.flush()?;
                true
            }
        };
        buf.clear();
        Ok(keep_going)
    }

    /// Answers an over-long request line and gives up on the connection.
    fn refuse_oversized(&self, writer: &mut dyn Write) -> std::io::Result<()> {
        self.count_unparseable_request(MAX_REQUEST_BYTES);
        let msg = format!("request line exceeds {MAX_REQUEST_BYTES} bytes");
        writeln!(writer, "{}", protocol::render_error(None, &msg))?;
        writer.flush()
    }

    /// Accounts a request that never reached [`Server::handle_line`]
    /// (invalid UTF-8, oversized line): it still counts as a request and
    /// still produces its one `serve.request.invalid` histogram sample, so
    /// `metrics` totals reconcile with `serve.requests` on every path.
    fn count_unparseable_request(&self, bytes: usize) {
        self.requests.fetch_add(1, Ordering::Relaxed);
        let registry = self.pool.telemetry();
        registry.counter_add("serve.bytes_read", bytes as u64);
        registry.observe("serve.request.invalid", 0.0);
        registry.counter_add("serve.errors", 1);
    }

    /// Accepts and serves TCP connections until a `shutdown` request (from
    /// any connection) or [`Server::request_shutdown`]. Each connection is
    /// handled on its own thread; all of them share this server's pool.
    ///
    /// # Errors
    ///
    /// Propagates listener-level I/O errors (per-connection errors only
    /// drop that connection).
    pub fn serve_tcp(&self, listener: &TcpListener) -> std::io::Result<()> {
        listener.set_nonblocking(true)?;
        std::thread::scope(|scope| {
            loop {
                if self.is_shutting_down() {
                    return Ok(());
                }
                match listener.accept() {
                    Ok((stream, _peer)) => {
                        scope.spawn(move || {
                            // Per-connection errors (reset, parse-level I/O)
                            // drop the connection, never the server.
                            let _ = self.serve_socket(stream);
                        });
                    }
                    Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                        std::thread::sleep(Duration::from_millis(25));
                    }
                    Err(e) => return Err(e),
                }
            }
        })
    }

    /// One TCP connection: read with a short timeout so the loop can notice
    /// a server-wide shutdown even while a client holds the socket open.
    /// Oversized request lines (see [`MAX_REQUEST_BYTES`]) get an error
    /// response and drop the connection.
    fn serve_socket(&self, stream: TcpStream) -> std::io::Result<()> {
        stream.set_nonblocking(false)?;
        stream.set_read_timeout(Some(Duration::from_millis(200)))?;
        let mut reader = BufReader::new(stream.try_clone()?);
        let mut writer = stream;
        let mut buf = Vec::new();
        loop {
            if self.is_shutting_down() {
                return Ok(());
            }
            match fill_line(&mut reader, &mut buf) {
                Ok(LineStatus::Eof) => return Ok(()),
                Ok(LineStatus::TooLong) => return self.refuse_oversized(&mut writer),
                Ok(LineStatus::Complete) => {
                    if !self.handle_buffered_line(&mut buf, &mut writer)? {
                        return Ok(());
                    }
                }
                // Read timeout: partial data (if any) stays in `buf`; loop
                // to re-check the shutdown flag, then keep reading.
                Err(e)
                    if matches!(
                        e.kind(),
                        std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                    ) => {}
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
                Err(e) => return Err(e),
            }
        }
    }

    /// Serves Prometheus text-format scrapes (`GET /metrics`-style) until
    /// shutdown — the `adhls serve --metrics-addr` listener. Each accepted
    /// connection gets one HTTP/1.0 response rendering
    /// [`Server::metrics_snapshot`] and is closed; the request head is read
    /// (bounded, best-effort) only to be polite to HTTP clients. Runs on
    /// the caller's thread; pair it with [`Server::serve_tcp`] on another.
    ///
    /// # Errors
    ///
    /// Propagates listener-level I/O errors (per-connection errors only
    /// drop that scrape).
    pub fn serve_metrics(&self, listener: &TcpListener) -> std::io::Result<()> {
        listener.set_nonblocking(true)?;
        loop {
            if self.is_shutting_down() {
                return Ok(());
            }
            match listener.accept() {
                Ok((stream, _peer)) => {
                    self.pool.telemetry().counter_add("serve.scrapes", 1);
                    let _ = self.answer_scrape(stream);
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                    std::thread::sleep(Duration::from_millis(25));
                }
                Err(e) => return Err(e),
            }
        }
    }

    /// One exposition response: drain the request head (until a blank line,
    /// EOF, a small cap, or a short timeout — scrapers vary), then write
    /// the snapshot and close.
    fn answer_scrape(&self, mut stream: TcpStream) -> std::io::Result<()> {
        stream.set_nonblocking(false)?;
        stream.set_read_timeout(Some(Duration::from_millis(250)))?;
        let mut head = Vec::new();
        let mut chunk = [0u8; 1024];
        loop {
            match stream.read(&mut chunk) {
                Ok(0) => break,
                Ok(n) => {
                    head.extend_from_slice(&chunk[..n]);
                    if head.windows(4).any(|w| w == b"\r\n\r\n") || head.len() >= 8 * 1024 {
                        break;
                    }
                }
                // A client that writes nothing (netcat probing the port)
                // still deserves the snapshot.
                Err(_) => break,
            }
        }
        let body = self.metrics_snapshot().render_prometheus();
        let response = format!(
            "HTTP/1.0 200 OK\r\nContent-Type: text/plain; version=0.0.4\r\n\
             Content-Length: {}\r\nConnection: close\r\n\r\n{body}",
            body.len()
        );
        stream.write_all(response.as_bytes())?;
        stream.flush()
    }
}

/// How [`Server::dispatch`] left one request: whether the connection stays
/// open, and whether the terminal response was `ok:true`.
struct Handled {
    keep_going: bool,
    ok: bool,
}

/// Removes a request's cancellation-registry entry when the request
/// finishes — on every path, including stream-error early returns.
struct CancelGuard<'a> {
    server: &'a Server,
    key: Option<String>,
}

impl Drop for CancelGuard<'_> {
    fn drop(&mut self) {
        if let Some(key) = self.key.take() {
            self.server
                .cancels
                .lock()
                .expect("cancel registry poisoned")
                .remove(&key);
        }
    }
}

/// Largest accepted request line. Inline DSL sources fit comfortably; a
/// client streaming bytes with no newline must not grow server memory
/// without bound.
pub const MAX_REQUEST_BYTES: usize = 4 << 20;

pub(crate) enum LineStatus {
    /// A full newline-terminated line is in the buffer (newline stripped).
    Complete,
    /// End of stream with nothing further buffered.
    Eof,
    /// The line outgrew [`MAX_REQUEST_BYTES`] before its newline arrived.
    TooLong,
}

/// Appends bytes to `buf` until a newline, EOF, or the size cap — a capped
/// `read_line` working in raw bytes so no single call can balloon memory.
/// Returns `Err` (e.g. `WouldBlock` on a read timeout) with any partial
/// data retained in `buf` for the next call.
pub(crate) fn fill_line(
    reader: &mut impl BufRead,
    buf: &mut Vec<u8>,
) -> std::io::Result<LineStatus> {
    loop {
        let (newline_at, available) = {
            let chunk = reader.fill_buf()?;
            if chunk.is_empty() {
                // EOF; any unterminated trailing bytes are not a request.
                return Ok(if buf.is_empty() {
                    LineStatus::Eof
                } else {
                    LineStatus::Complete
                });
            }
            (chunk.iter().position(|&b| b == b'\n'), chunk.len())
        };
        match newline_at {
            Some(pos) => {
                let chunk = reader.fill_buf()?;
                buf.extend_from_slice(&chunk[..pos]);
                reader.consume(pos + 1);
                return Ok(if buf.len() > MAX_REQUEST_BYTES {
                    LineStatus::TooLong
                } else {
                    LineStatus::Complete
                });
            }
            None => {
                let chunk = reader.fill_buf()?;
                buf.extend_from_slice(chunk);
                reader.consume(available);
                if buf.len() > MAX_REQUEST_BYTES {
                    return Ok(LineStatus::TooLong);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pool::PoolOptions;
    use adhls_core::json::Value;
    use adhls_core::sched::HlsOptions;
    use adhls_reslib::tsmc90;

    fn server(threads: usize, cache_bytes: Option<usize>) -> Server {
        Server::new(EvaluatorPool::new(
            tsmc90::library(),
            HlsOptions::default(),
            PoolOptions {
                threads,
                skip_infeasible: true,
                cache_bytes,
                ..Default::default()
            },
        ))
    }

    /// Runs `requests` through a fresh connection and returns the response
    /// lines.
    fn roundtrip(srv: &Server, requests: &str) -> Vec<String> {
        let mut out = Vec::new();
        srv.serve_connection(requests.as_bytes(), &mut out).unwrap();
        String::from_utf8(out)
            .unwrap()
            .lines()
            .map(str::to_string)
            .collect()
    }

    #[test]
    fn ping_stats_and_errors_round_trip() {
        let srv = server(1, None);
        let lines = roundtrip(
            &srv,
            "{\"id\":1,\"cmd\":\"ping\"}\n\nnot json\n{\"id\":2,\"cmd\":\"stats\"}\n",
        );
        assert_eq!(lines.len(), 3, "{lines:?}");
        let ping = Value::parse(&lines[0]).unwrap();
        assert_eq!(ping.get("ok"), Some(&Value::Bool(true)));
        assert_eq!(ping.get("id").and_then(Value::as_u64), Some(1));
        let err = Value::parse(&lines[1]).unwrap();
        assert_eq!(err.get("ok"), Some(&Value::Bool(false)));
        let stats = Value::parse(&lines[2]).unwrap();
        let s = stats.get("stats").unwrap();
        // Blank lines are skipped, malformed lines still count as requests.
        assert_eq!(s.get("requests").and_then(Value::as_u64), Some(3));
        assert_eq!(s.get("threads").and_then(Value::as_u64), Some(1));
    }

    #[test]
    fn sweep_request_returns_rows_front_and_summary() {
        let srv = server(2, None);
        let lines = roundtrip(
            &srv,
            "{\"id\":\"s\",\"cmd\":\"sweep\",\"workload\":\"interpolation\",\
             \"clocks\":[1100,1400],\"cycles\":[3,4]}\n",
        );
        assert_eq!(lines.len(), 1);
        let v = Value::parse(&lines[0]).unwrap();
        assert_eq!(v.get("ok"), Some(&Value::Bool(true)));
        assert_eq!(v.get("rows").and_then(Value::as_arr).unwrap().len(), 4);
        assert!(!v.get("front").and_then(Value::as_arr).unwrap().is_empty());
        // The Table-4 (area, latency) staircase rides along with the
        // four-objective front, never larger than it.
        let staircase = v.get("staircase").and_then(Value::as_arr).unwrap();
        assert!(!staircase.is_empty());
        assert!(staircase.len() <= v.get("front").and_then(Value::as_arr).unwrap().len());
        assert!(v.get("summary").unwrap().get("avg_save_pct").is_some());
    }

    #[test]
    fn sweep_requests_honor_and_echo_the_objectives_field() {
        use crate::pareto::ObjectiveSpace;
        let srv = server(2, None);
        let lines = roundtrip(
            &srv,
            "{\"id\":1,\"cmd\":\"sweep\",\"workload\":\"interpolation\",\
             \"clocks\":[1100,1400],\"cycles\":[3,4]}\n\
             {\"id\":2,\"cmd\":\"sweep\",\"workload\":\"interpolation\",\
             \"clocks\":[1100,1400],\"cycles\":[3,4],\"objectives\":[\"area\",\"power\"]}\n\
             {\"id\":3,\"cmd\":\"sweep\",\"workload\":\"interpolation\",\
             \"objectives\":[\"area\",\"warp\"]}\n",
        );
        assert_eq!(lines.len(), 3, "{lines:?}");
        // No objectives requested: the full four-axis default, recorded.
        assert!(
            lines[0].contains("\"objectives\":[\"area\",\"latency\",\"power\",\"throughput\"]"),
            "{}",
            lines[0]
        );
        // A selected space is echoed, and the front is extracted in it —
        // byte-identical to projecting the same rows directly.
        assert!(
            lines[1].contains("\"objectives\":[\"area\",\"power\"]"),
            "{}",
            lines[1]
        );
        let spec = WorkloadSpec {
            workload: Some("interpolation".into()),
            clocks: Some(vec![1100, 1400]),
            cycles: Some(vec![3, 4]),
            ..Default::default()
        };
        let rows = srv
            .pool()
            .evaluate(&sweep_points(&spec).unwrap())
            .unwrap()
            .rows;
        let space = ObjectiveSpace::parse("area,power").unwrap();
        let expected =
            crate::export::rows_to_json_line(&crate::pareto::pareto_front_in(&space, &rows));
        assert!(
            lines[1].contains(&format!("\"front\":{expected}")),
            "served (area,power) front != direct projection\nserved: {}",
            lines[1]
        );
        // An unknown axis is a request-level error naming the field.
        let err = Value::parse(&lines[2]).unwrap();
        assert_eq!(err.get("ok"), Some(&Value::Bool(false)), "{}", lines[2]);
        assert!(lines[2].contains("objectives"), "{}", lines[2]);
        assert!(lines[2].contains("warp"), "{}", lines[2]);
    }

    #[test]
    fn constrained_sweeps_filter_fronts_and_echo_the_constraints() {
        use crate::constraint::Constraint;
        let srv = server(2, None);
        let lines = roundtrip(
            &srv,
            "{\"id\":1,\"cmd\":\"sweep\",\"workload\":\"interpolation\",\
             \"clocks\":[1100,1400],\"cycles\":[3,4]}\n\
             {\"id\":2,\"cmd\":\"sweep\",\"workload\":\"interpolation\",\
             \"clocks\":[1100,1400],\"cycles\":[3,4],\"constraints\":[\"power<=1400\"]}\n",
        );
        assert_eq!(lines.len(), 2, "{lines:?}");
        let unconstrained = Value::parse(&lines[0]).unwrap();
        let constrained = Value::parse(&lines[1]).unwrap();
        assert_eq!(
            constrained.get("ok"),
            Some(&Value::Bool(true)),
            "{}",
            lines[1]
        );
        // The constraint is echoed; the unconstrained response omits the
        // field entirely (byte-compatible with pre-constraint responses).
        assert!(
            lines[1].contains("\"constraints\":[\"power<=1400\"]"),
            "{}",
            lines[1]
        );
        assert!(!lines[0].contains("\"constraints\""), "{}", lines[0]);
        // Every front row is feasible, and the constrained front is the
        // feasible slice of the unconstrained one.
        let bound = Constraint::parse("power<=1400").unwrap();
        let front_powers = |v: &Value| -> Vec<f64> {
            v.get("front")
                .and_then(Value::as_arr)
                .unwrap()
                .iter()
                .map(|r| {
                    r.get("power")
                        .unwrap()
                        .get("total")
                        .and_then(Value::as_f64)
                        .unwrap()
                })
                .collect()
        };
        let feas = front_powers(&constrained);
        assert!(!feas.is_empty(), "{}", lines[1]);
        assert!(feas.iter().all(|&p| p <= bound.bound), "{feas:?}");
        let all = front_powers(&unconstrained);
        assert!(
            all.iter().any(|&p| p > bound.bound),
            "the bound must actually cut the front for this test to mean anything: {all:?}"
        );
        // Rows stay the full sweep — constraints shape fronts, not data.
        assert_eq!(
            unconstrained
                .get("rows")
                .and_then(Value::as_arr)
                .unwrap()
                .len(),
            constrained
                .get("rows")
                .and_then(Value::as_arr)
                .unwrap()
                .len()
        );
    }

    #[test]
    fn malformed_constraints_return_structured_errors_and_keep_the_connection() {
        let srv = server(1, None);
        // Unknown axis, bad shape, non-finite bound, axis outside the
        // active space — each gets an ok:false result naming the field,
        // and the connection keeps serving (the trailing ping answers).
        let lines = roundtrip(
            &srv,
            "{\"id\":1,\"cmd\":\"sweep\",\"workload\":\"interpolation\",\
             \"constraints\":[\"warp<=1\"]}\n\
             {\"id\":2,\"cmd\":\"sweep\",\"workload\":\"interpolation\",\
             \"constraints\":[\"area=1\"]}\n\
             {\"id\":3,\"cmd\":\"sweep\",\"workload\":\"interpolation\",\
             \"constraints\":[\"area<=NaN\"]}\n\
             {\"id\":4,\"cmd\":\"sweep\",\"workload\":\"interpolation\",\
             \"objectives\":[\"area\",\"latency\"],\"constraints\":[\"power<=10\"]}\n\
             {\"id\":5,\"cmd\":\"refine\",\"workload\":\"interpolation\",\
             \"constraints\":[\"power<=10\"]}\n\
             {\"id\":6,\"cmd\":\"ping\"}\n",
        );
        assert_eq!(lines.len(), 6, "{lines:?}");
        for (i, needle) in [
            (0, "warp"),
            (1, "<="),
            (2, "finite"),
            (3, "power"),
            (4, "power"),
        ] {
            let v = Value::parse(&lines[i]).unwrap();
            assert_eq!(v.get("ok"), Some(&Value::Bool(false)), "{}", lines[i]);
            let err = v.get("error").and_then(Value::as_str).unwrap();
            assert!(err.contains("constraints"), "{}", lines[i]);
            assert!(err.contains(needle), "{}", lines[i]);
            assert_eq!(
                v.get("id").and_then(Value::as_u64),
                Some(i as u64 + 1),
                "errors keep their request id: {}",
                lines[i]
            );
        }
        let ping = Value::parse(&lines[5]).unwrap();
        assert_eq!(ping.get("ok"), Some(&Value::Bool(true)), "{}", lines[5]);
    }

    #[test]
    fn multi_plane_sweeps_report_every_plane() {
        let srv = server(2, None);
        let lines = roundtrip(
            &srv,
            "{\"id\":1,\"cmd\":\"sweep\",\"workload\":\"interpolation\",\
             \"clocks\":[1100,1400],\"cycles\":[3,4],\
             \"objectives\":\"area,latency;area,power\"}\n",
        );
        assert_eq!(lines.len(), 1, "{lines:?}");
        let v = Value::parse(&lines[0]).unwrap();
        assert_eq!(v.get("ok"), Some(&Value::Bool(true)), "{}", lines[0]);
        // Top level mirrors the first plane; `planes` holds both views.
        assert!(
            lines[0].contains("\"objectives\":[\"area\",\"latency\"]"),
            "{}",
            lines[0]
        );
        let planes = v.get("planes").and_then(Value::as_arr).unwrap();
        assert_eq!(planes.len(), 2);
        let names: Vec<String> = planes
            .iter()
            .map(|p| p.get("objectives").unwrap().render())
            .collect();
        assert_eq!(names, ["[\"area\",\"latency\"]", "[\"area\",\"power\"]"]);
        for p in planes {
            assert!(!p.get("front").and_then(Value::as_arr).unwrap().is_empty());
            assert!(!p
                .get("staircase")
                .and_then(Value::as_arr)
                .unwrap()
                .is_empty());
        }
        // The first plane's view is byte-identical at both levels.
        assert_eq!(
            planes[0].get("front").unwrap().render(),
            v.get("front").unwrap().render()
        );
    }

    #[test]
    fn multi_plane_refines_run_one_pass_and_report_per_plane_results() {
        let srv = server(2, None);
        let lines = roundtrip(
            &srv,
            "{\"id\":9,\"cmd\":\"refine\",\"workload\":\"interpolation\",\
             \"clocks\":[1100,1250,1400,1800],\"cycles\":[3,4,6],\"gap_tol\":0.15,\
             \"objectives\":\"area,latency;area,power\"}\n",
        );
        assert!(lines.len() >= 2, "round events then result: {lines:?}");
        // Streams multi-plane round events carrying per-plane gaps.
        for l in &lines[..lines.len() - 1] {
            let v = Value::parse(l).unwrap();
            assert_eq!(v.get("event").and_then(Value::as_str), Some("round"));
            assert_eq!(
                v.get("plane_gaps")
                    .and_then(Value::as_arr)
                    .map(<[Value]>::len),
                Some(2),
                "{l}"
            );
        }
        let last = Value::parse(lines.last().unwrap()).unwrap();
        assert_eq!(last.get("ok"), Some(&Value::Bool(true)), "{lines:?}");
        let planes = last.get("planes").and_then(Value::as_arr).unwrap();
        assert_eq!(planes.len(), 2);
        for p in planes {
            assert!(!p
                .get("staircase")
                .and_then(Value::as_arr)
                .unwrap()
                .is_empty());
            assert!(!p.get("rounds").and_then(Value::as_arr).unwrap().is_empty());
        }
        // The shared evaluation set is reported once, with unique rows.
        let rows = last.get("rows").and_then(Value::as_arr).unwrap();
        let mut names: Vec<&str> = rows
            .iter()
            .map(|r| r.get("name").and_then(Value::as_str).unwrap())
            .collect();
        names.sort_unstable();
        let before = names.len();
        names.dedup();
        assert_eq!(names.len(), before, "a cell was evaluated twice");
    }

    #[test]
    fn refine_requests_accept_objective_strings_and_echo_the_plane() {
        let srv = server(2, None);
        let lines = roundtrip(
            &srv,
            "{\"id\":9,\"cmd\":\"refine\",\"workload\":\"interpolation\",\
             \"clocks\":[1100,1250,1400,1800],\"cycles\":[3,4,6],\"gap_tol\":0.2,\
             \"objectives\":\"area,power\"}\n",
        );
        let last = Value::parse(lines.last().unwrap()).unwrap();
        assert_eq!(last.get("ok"), Some(&Value::Bool(true)), "{lines:?}");
        assert!(
            lines
                .last()
                .unwrap()
                .contains("\"objectives\":[\"area\",\"power\"]"),
            "{}",
            lines.last().unwrap()
        );
    }

    #[test]
    fn inline_dsl_sweeps_clocks() {
        let srv = server(1, None);
        let dsl = std::fs::read_to_string(concat!(
            env!("CARGO_MANIFEST_DIR"),
            "/../../examples/dsl/resizer.adhls"
        ))
        .unwrap();
        let req = Value::Obj(vec![
            ("cmd".into(), Value::Str("sweep".into())),
            ("dsl".into(), Value::Str(dsl)),
            (
                "clocks".into(),
                Value::Arr(vec![Value::Num(2000.0), Value::Num(2600.0)]),
            ),
        ])
        .render();
        let lines = roundtrip(&srv, &format!("{req}\n"));
        let v = Value::parse(&lines[0]).unwrap();
        assert_eq!(v.get("ok"), Some(&Value::Bool(true)), "{}", lines[0]);
        let rows = v.get("rows").and_then(Value::as_arr).unwrap();
        assert_eq!(rows.len(), 2);
        let name = rows[0].get("name").and_then(Value::as_str).unwrap();
        assert!(name.starts_with("resizer-c"), "{name}");
    }

    #[test]
    fn refine_request_streams_rounds_then_result_matching_direct_run() {
        use crate::engine::{Engine, EngineOptions};
        use crate::refine::refine;
        let srv = server(2, None);
        let lines = roundtrip(
            &srv,
            "{\"id\":9,\"cmd\":\"refine\",\"workload\":\"interpolation\",\
             \"clocks\":[1100,1250,1400,1800],\"cycles\":[3,4,6],\"gap_tol\":0.1}\n",
        );
        assert!(
            lines.len() >= 2,
            "expected round events + result: {lines:?}"
        );
        for l in &lines[..lines.len() - 1] {
            let v = Value::parse(l).unwrap();
            assert_eq!(v.get("event").and_then(Value::as_str), Some("round"));
        }
        let last = Value::parse(lines.last().unwrap()).unwrap();
        assert_eq!(last.get("event").and_then(Value::as_str), Some("result"));
        assert_eq!(last.get("ok"), Some(&Value::Bool(true)));

        // The front over the wire is byte-identical to a direct engine run.
        let lib = tsmc90::library();
        let engine = Engine::with_options(
            &lib,
            HlsOptions::default(),
            EngineOptions {
                skip_infeasible: true,
                ..Default::default()
            },
        );
        let (grid, prefix, build) = workload_grid(&WorkloadSpec {
            workload: Some("interpolation".into()),
            clocks: Some(vec![1100, 1250, 1400, 1800]),
            cycles: Some(vec![3, 4, 6]),
            ..Default::default()
        })
        .unwrap();
        let direct = refine(
            &engine,
            &grid,
            &prefix,
            build,
            &RefineOptions {
                gap_tol: 0.1,
                ..Default::default()
            },
        )
        .unwrap();
        let expected = crate::export::rows_to_json_line(&direct.front);
        assert!(
            lines
                .last()
                .unwrap()
                .contains(&format!("\"front\":{expected}")),
            "served front != direct front\nserved: {}\nexpected: {expected}",
            lines.last().unwrap()
        );
    }

    #[test]
    fn oversized_request_lines_are_refused_not_buffered() {
        let srv = server(1, None);
        // A newline-less flood larger than the cap: the server must answer
        // with one error line and close, not accumulate it.
        let mut flood = vec![b'x'; MAX_REQUEST_BYTES + 2];
        flood.push(b'\n');
        let mut out = Vec::new();
        srv.serve_connection(flood.as_slice(), &mut out).unwrap();
        let text = String::from_utf8(out).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 1, "{text}");
        let v = Value::parse(lines[0]).unwrap();
        assert_eq!(v.get("ok"), Some(&Value::Bool(false)));
        assert!(
            v.get("error")
                .and_then(Value::as_str)
                .unwrap()
                .contains("exceeds"),
            "{text}"
        );
    }

    #[test]
    fn absurd_count_and_dim_are_rejected_up_front() {
        let srv = server(1, None);
        let lines = roundtrip(
            &srv,
            "{\"id\":1,\"cmd\":\"sweep\",\"workload\":\"random\",\"count\":1000000000}\n\
             {\"id\":2,\"cmd\":\"sweep\",\"workload\":\"matmul\",\"dim\":4096}\n",
        );
        assert_eq!(lines.len(), 2);
        for l in &lines {
            let v = Value::parse(l).unwrap();
            assert_eq!(v.get("ok"), Some(&Value::Bool(false)), "{l}");
        }
        assert!(lines[0].contains("count"), "{}", lines[0]);
        assert!(lines[1].contains("dim"), "{}", lines[1]);
    }

    #[test]
    fn shutdown_request_ends_the_connection_and_flags_the_server() {
        let srv = server(1, None);
        let lines = roundtrip(
            &srv,
            "{\"id\":1,\"cmd\":\"shutdown\"}\n{\"id\":2,\"cmd\":\"ping\"}\n",
        );
        assert_eq!(lines.len(), 1, "nothing after shutdown: {lines:?}");
        assert!(srv.is_shutting_down());
    }

    #[test]
    fn tcp_serves_concurrent_clients_and_stops_on_shutdown() {
        use std::io::{BufRead as _, Write as _};
        let srv = server(4, None);
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        std::thread::scope(|scope| {
            let serve = scope.spawn(|| srv.serve_tcp(&listener).unwrap());
            let client = |req: String| {
                let mut s = TcpStream::connect(addr).unwrap();
                s.write_all(req.as_bytes()).unwrap();
                let mut r = BufReader::new(s.try_clone().unwrap());
                let mut line = String::new();
                r.read_line(&mut line).unwrap();
                line
            };
            let handles: Vec<_> = (0..2)
                .map(|i| {
                    scope.spawn(move || {
                        client(format!(
                            "{{\"id\":{i},\"cmd\":\"sweep\",\"workload\":\"interpolation\",\
                             \"clocks\":[1100,1400],\"cycles\":[3,4]}}\n"
                        ))
                    })
                })
                .collect();
            let responses: Vec<String> = handles.into_iter().map(|h| h.join().unwrap()).collect();
            // Shut the server down *before* asserting: a failed assert
            // inside this scope would otherwise leave the serve thread
            // alive and the scope (hence the test) hung forever.
            client("{\"cmd\":\"shutdown\"}\n".into());
            serve.join().unwrap();
            for resp in &responses {
                let v = Value::parse(resp).unwrap();
                assert_eq!(v.get("ok"), Some(&Value::Bool(true)), "{resp}");
            }
            // Identical concurrent requests: both fronts bit-identical
            // (per-request counters like cache_hits legitimately differ).
            let front = |r: &str| Value::parse(r).unwrap().get("front").unwrap().render();
            assert_eq!(
                front(&responses[0]),
                front(&responses[1]),
                "concurrent clients saw different fronts"
            );
        });
    }
}
