//! Cache lifecycle management for long-lived evaluator processes.
//!
//! The engine's [`ResultCache`](crate::engine::ResultCache) grows without
//! bound — fine for one-shot CLI sweeps, fatal for a server that evaluates
//! millions of cells over weeks. [`EvictingCache`] is the server-grade
//! replacement the [`EvaluatorPool`](crate::pool::EvaluatorPool) uses:
//!
//! * **byte budget** — an optional global budget, split evenly across the
//!   shards; inserts that would exceed a shard's slice evict its
//!   least-recently-used entries first (cost-aware: every entry is charged
//!   its approximate heap footprint, so one giant row displaces many small
//!   ones rather than sneaking in for free),
//! * **in-flight coalescing** — concurrent requests for the same
//!   (design, options) key wait for the one evaluation in progress instead
//!   of re-running HLS; with requests multiplexed onto one pool this is
//!   what makes cross-request sharing deterministic rather than a race,
//! * **observable** — hit/coalesced/miss/eviction counters and live
//!   entry/byte gauges, surfaced by the server's `stats` request.
//!
//! Eviction never changes what an evaluation returns: rows are pure
//! functions of (design, library, options), so an evicted entry is merely
//! recomputed on the next miss. The proptest in `tests/pool_eviction.rs`
//! pins this down against the unbudgeted pool.

use crate::engine::HitMiss;
use adhls_core::dse::DseRow;
use adhls_ir::{Error, Result};
use std::collections::{BTreeMap, HashMap};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};

/// Number of independent shards (same fan-out as the engine's cache).
const SHARDS: usize = 16;

/// Approximate per-entry bookkeeping overhead (hash-map slot, key, LRU
/// metadata) charged on top of the row payload.
const ENTRY_OVERHEAD: usize = 48;

/// Approximate heap cost of caching one row, in bytes.
#[must_use]
pub fn row_cost(row: &DseRow) -> usize {
    ENTRY_OVERHEAD + std::mem::size_of::<DseRow>() + row.name.len()
}

/// How a [`EvictingCache::get_or_compute`] call was satisfied.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Outcome {
    /// Found in the cache.
    Hit,
    /// Waited for another thread's in-flight evaluation of the same key.
    Coalesced,
    /// Evaluated by this call.
    Computed,
}

/// A point-in-time snapshot of the cache's counters and gauges.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups answered from the cache.
    pub hits: u64,
    /// Lookups answered by waiting on a concurrent in-flight evaluation.
    pub coalesced: u64,
    /// Lookups that had to evaluate.
    pub misses: u64,
    /// Entries evicted to respect the byte budget (including rows too big
    /// to cache at all).
    pub evictions: u64,
    /// Entries currently cached.
    pub entries: usize,
    /// Approximate bytes currently cached (incl. per-entry overhead).
    pub bytes: usize,
    /// The configured byte budget (`None` = unbounded).
    pub capacity_bytes: Option<usize>,
}

impl CacheStats {
    /// Collapses the counters to the named hit/miss pair every cache
    /// surface shares (see [`HitMiss`]). Coalesced in-flight waits count as
    /// hits: from the caller's perspective both avoided an HLS run.
    #[must_use]
    pub fn hit_miss(&self) -> HitMiss {
        HitMiss {
            hits: self.hits + self.coalesced,
            misses: self.misses,
        }
    }
}

struct Entry {
    row: DseRow,
    cost: usize,
    last_used: u64,
}

#[derive(Default)]
struct Shard {
    map: HashMap<u64, Entry>,
    /// Recency index: `last_used` tick → key. Ticks are unique within a
    /// shard, so the first entry is always the LRU victim — eviction is
    /// O(log n) instead of a full scan per evicted entry (a server shard
    /// can hold tens of thousands of entries, and the scan runs inside
    /// the shard lock).
    order: BTreeMap<u64, u64>,
    bytes: usize,
    tick: u64,
}

impl Shard {
    fn touch(&mut self, key: u64) -> Option<DseRow> {
        self.tick += 1;
        let tick = self.tick;
        let e = self.map.get_mut(&key)?;
        self.order.remove(&e.last_used);
        self.order.insert(tick, key);
        e.last_used = tick;
        Some(e.row.clone())
    }

    /// Inserts under `budget`, evicting LRU entries first. Returns how many
    /// entries were evicted (the new row itself counts as evicted when it
    /// exceeds the whole shard budget and cannot be cached at all).
    fn insert(&mut self, key: u64, row: DseRow, budget: Option<usize>) -> u64 {
        let cost = row_cost(&row);
        if let Some(budget) = budget {
            if cost > budget {
                return 1;
            }
        }
        self.tick += 1;
        if let Some(old) = self.map.insert(
            key,
            Entry {
                row,
                cost,
                last_used: self.tick,
            },
        ) {
            self.bytes -= old.cost;
            self.order.remove(&old.last_used);
        }
        self.bytes += cost;
        self.order.insert(self.tick, key);
        let mut evicted = 0;
        if let Some(budget) = budget {
            // The just-inserted key can never be the victim: it holds the
            // newest tick, and a shard whose only entry is the new one is
            // within budget (cost <= budget was checked above).
            while self.bytes > budget {
                let (_, lru) = self
                    .order
                    .pop_first()
                    .expect("over budget implies an evictable entry");
                let e = self.map.remove(&lru).expect("lru key present");
                self.bytes -= e.cost;
                evicted += 1;
            }
        }
        evicted
    }
}

/// One in-flight evaluation other threads can wait on.
struct Inflight {
    slot: Mutex<Option<Result<DseRow>>>,
    done: Condvar,
}

impl Inflight {
    fn publish(&self, result: Result<DseRow>) {
        let mut slot = self.slot.lock().expect("inflight slot poisoned");
        *slot = Some(result);
        self.done.notify_all();
    }

    fn wait(&self) -> Result<DseRow> {
        let mut slot = self.slot.lock().expect("inflight slot poisoned");
        loop {
            if let Some(r) = slot.as_ref() {
                return r.clone();
            }
            slot = self.done.wait(slot).expect("inflight slot poisoned");
        }
    }
}

/// Publishes a panic-shaped error if the computing thread unwinds before
/// publishing a real result — without this, waiters on the in-flight slot
/// would block forever behind a panicked evaluation.
struct PublishGuard<'a> {
    cache: &'a EvictingCache,
    key: u64,
    inflight: &'a Arc<Inflight>,
    published: bool,
}

impl Drop for PublishGuard<'_> {
    fn drop(&mut self) {
        {
            let mut map = self.cache.inflight.lock().expect("inflight map poisoned");
            map.remove(&self.key);
        }
        if !self.published {
            self.inflight.publish(Err(Error::Interp(
                "in-flight evaluation panicked before publishing".into(),
            )));
        }
    }
}

/// A sharded result cache with an optional byte budget (LRU, cost-aware
/// eviction) and in-flight request coalescing. See the module docs.
pub struct EvictingCache {
    shards: [Mutex<Shard>; SHARDS],
    inflight: Mutex<HashMap<u64, Arc<Inflight>>>,
    shard_budget: Option<usize>,
    capacity: Option<usize>,
    hits: AtomicU64,
    coalesced: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
}

impl std::fmt::Debug for EvictingCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = self.stats();
        f.debug_struct("EvictingCache")
            .field("capacity_bytes", &self.capacity)
            .field("entries", &s.entries)
            .field("bytes", &s.bytes)
            .finish_non_exhaustive()
    }
}

impl EvictingCache {
    /// A cache bounded to roughly `capacity_bytes` (`None` = unbounded —
    /// identical policy to the engine's plain cache). The budget is split
    /// evenly across the shards, so the worst-case overshoot of the global
    /// budget is zero: each shard enforces its slice under its own lock.
    #[must_use]
    pub fn new(capacity_bytes: Option<usize>) -> Self {
        EvictingCache {
            shards: std::array::from_fn(|_| Mutex::new(Shard::default())),
            inflight: Mutex::new(HashMap::new()),
            shard_budget: capacity_bytes.map(|c| c / SHARDS),
            capacity: capacity_bytes,
            hits: AtomicU64::new(0),
            coalesced: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
        }
    }

    fn shard(&self, key: u64) -> &Mutex<Shard> {
        &self.shards[(key % SHARDS as u64) as usize]
    }

    /// Looks `key` up; on a miss, either waits for a concurrent in-flight
    /// evaluation of the same key or runs `compute` itself and caches the
    /// result. The returned row is bit-identical no matter which path was
    /// taken (rows are pure functions of the key's preimage).
    ///
    /// # Errors
    ///
    /// Propagates `compute`'s error (shared verbatim with coalesced
    /// waiters; errors are not cached, so a later lookup retries).
    pub fn get_or_compute(
        &self,
        key: u64,
        compute: impl FnOnce() -> Result<DseRow>,
    ) -> (Result<DseRow>, Outcome) {
        if let Some(row) = self
            .shard(key)
            .lock()
            .expect("cache shard poisoned")
            .touch(key)
        {
            self.hits.fetch_add(1, Ordering::Relaxed);
            return (Ok(row), Outcome::Hit);
        }
        // Claim or join the in-flight slot for this key.
        let (inflight, claimed) = {
            let mut map = self.inflight.lock().expect("inflight map poisoned");
            match map.get(&key) {
                Some(f) => (Arc::clone(f), false),
                None => {
                    let f = Arc::new(Inflight {
                        slot: Mutex::new(None),
                        done: Condvar::new(),
                    });
                    map.insert(key, Arc::clone(&f));
                    (f, true)
                }
            }
        };
        if !claimed {
            self.coalesced.fetch_add(1, Ordering::Relaxed);
            return (inflight.wait(), Outcome::Coalesced);
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        let mut guard = PublishGuard {
            cache: self,
            key,
            inflight: &inflight,
            published: false,
        };
        let result = compute();
        if let Ok(row) = &result {
            let evicted = self
                .shard(key)
                .lock()
                .expect("cache shard poisoned")
                .insert(key, row.clone(), self.shard_budget);
            self.evictions.fetch_add(evicted, Ordering::Relaxed);
        }
        inflight.publish(result.clone());
        guard.published = true;
        drop(guard);
        (result, Outcome::Computed)
    }

    /// Point-in-time counters and gauges.
    #[must_use]
    pub fn stats(&self) -> CacheStats {
        let mut entries = 0;
        let mut bytes = 0;
        for s in &self.shards {
            let s = s.lock().expect("cache shard poisoned");
            entries += s.map.len();
            bytes += s.bytes;
        }
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            coalesced: self.coalesced.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            entries,
            bytes,
            capacity_bytes: self.capacity,
        }
    }

    /// Number of cached rows.
    #[must_use]
    pub fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.lock().expect("cache shard poisoned").map.len())
            .sum()
    }

    /// True when nothing is cached.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use adhls_core::power::PowerReport;

    fn row(name: &str) -> DseRow {
        DseRow {
            name: name.into(),
            a_conv: 10.0,
            a_slack: 9.0,
            save_pct: 10.0,
            power: PowerReport {
                dynamic: 1.0,
                leakage: 1.0,
                total: 2.0,
            },
            throughput: 100.0,
            latency_ps: 10_000.0,
            clock_ps: 1000,
        }
    }

    #[test]
    fn hit_after_compute_and_stats_track_both() {
        let c = EvictingCache::new(None);
        let (r, o) = c.get_or_compute(7, || Ok(row("a")));
        assert_eq!(o, Outcome::Computed);
        let (r2, o2) = c.get_or_compute(7, || panic!("must not recompute"));
        assert_eq!(o2, Outcome::Hit);
        assert_eq!(r.unwrap(), r2.unwrap());
        let s = c.stats();
        assert_eq!((s.hits, s.misses, s.evictions), (1, 1, 0));
        assert_eq!(s.entries, 1);
        assert!(s.bytes >= row_cost(&row("a")));
    }

    #[test]
    fn budget_is_respected_and_evictions_counted() {
        // Budget for ~2 entries per shard; hammer one shard (keys share
        // key % 16) so eviction must kick in.
        let per_entry = row_cost(&row("r000"));
        let c = EvictingCache::new(Some(per_entry * 2 * SHARDS));
        for i in 0..20u64 {
            let name = format!("r{i:03}");
            let (r, _) = c.get_or_compute(i * SHARDS as u64, || Ok(row(&name)));
            r.unwrap();
        }
        let s = c.stats();
        assert!(s.evictions >= 18, "evictions: {}", s.evictions);
        assert!(s.bytes <= per_entry * 2, "one shard over its slice");
        assert_eq!(s.entries, c.len());
    }

    #[test]
    fn lru_keeps_recently_used_entries() {
        let per_entry = row_cost(&row("r0"));
        let c = EvictingCache::new(Some(per_entry * 2 * SHARDS));
        let k = |i: u64| i * SHARDS as u64; // all in shard 0
        c.get_or_compute(k(1), || Ok(row("r1"))).0.unwrap();
        c.get_or_compute(k(2), || Ok(row("r2"))).0.unwrap();
        // Touch r1 so r2 is the LRU when r3 arrives.
        assert_eq!(c.get_or_compute(k(1), || unreachable!()).1, Outcome::Hit);
        c.get_or_compute(k(3), || Ok(row("r3"))).0.unwrap();
        assert_eq!(c.get_or_compute(k(1), || unreachable!()).1, Outcome::Hit);
        assert_eq!(
            c.get_or_compute(k(2), || Ok(row("r2"))).1,
            Outcome::Computed,
            "r2 was the LRU and must have been evicted"
        );
    }

    #[test]
    fn oversized_rows_are_not_cached_but_still_returned() {
        let c = EvictingCache::new(Some(SHARDS)); // 1 byte per shard
        let (r, o) = c.get_or_compute(1, || Ok(row("giant")));
        assert_eq!(o, Outcome::Computed);
        assert_eq!(r.unwrap().name, "giant");
        let s = c.stats();
        assert_eq!(s.entries, 0);
        assert_eq!(s.evictions, 1);
        assert_eq!(s.bytes, 0);
    }

    #[test]
    fn errors_are_shared_but_not_cached() {
        let c = EvictingCache::new(None);
        let (r, _) = c.get_or_compute(5, || Err(Error::Interp("boom".into())));
        assert!(r.is_err());
        // Next lookup retries the computation rather than replaying the
        // cached failure.
        let (r2, o2) = c.get_or_compute(5, || Ok(row("ok")));
        assert_eq!(o2, Outcome::Computed);
        assert_eq!(r2.unwrap().name, "ok");
    }

    #[test]
    fn concurrent_same_key_coalesces_onto_one_computation() {
        use std::sync::atomic::AtomicUsize;
        let c = EvictingCache::new(None);
        let computed = AtomicUsize::new(0);
        let gate = std::sync::Barrier::new(8);
        std::thread::scope(|scope| {
            for _ in 0..8 {
                scope.spawn(|| {
                    gate.wait();
                    let (r, _) = c.get_or_compute(9, || {
                        computed.fetch_add(1, Ordering::Relaxed);
                        // Hold the in-flight window open long enough for
                        // the other threads to join it.
                        std::thread::sleep(std::time::Duration::from_millis(20));
                        Ok(row("shared"))
                    });
                    assert_eq!(r.unwrap().name, "shared");
                });
            }
        });
        assert_eq!(
            computed.load(Ordering::Relaxed),
            1,
            "exactly one thread computes; the rest coalesce or hit"
        );
        let s = c.stats();
        assert_eq!(s.hits + s.coalesced, 7);
    }

    #[test]
    fn publish_guard_unblocks_waiters_on_panic() {
        let c = EvictingCache::new(None);
        std::thread::scope(|scope| {
            let panicker = scope.spawn(|| {
                let _ = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                    c.get_or_compute(3, || {
                        std::thread::sleep(std::time::Duration::from_millis(30));
                        panic!("evaluation blew up")
                    })
                }));
            });
            std::thread::sleep(std::time::Duration::from_millis(10));
            let waiter = scope.spawn(|| c.get_or_compute(3, || Ok(row("late"))));
            let (r, _) = waiter.join().unwrap();
            // Either the waiter coalesced onto the panicked slot (error) or
            // arrived after cleanup and computed fresh — both must return,
            // never hang.
            if let Ok(row) = r {
                assert_eq!(row.name, "late");
            }
            panicker.join().unwrap();
        });
    }
}
