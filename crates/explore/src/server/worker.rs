//! Worker backends for the multi-worker serve tier.
//!
//! A worker is an ordinary exploration [`Server`] reached over two
//! line-oriented channels: a **data** link carrying one sweep/refine at a
//! time (the worker answers requests on a connection strictly in order,
//! which is what makes response correlation trivial), and a **control**
//! link for messages that must not wait behind a running refinement —
//! `cancel`, and the router's `stats`/`metrics` aggregation probes.
//!
//! Two implementations share the [`WorkerLink`] trait:
//!
//! * **in-process thread workers** ([`WorkerHandle::in_process`]) — a
//!   [`Server`] served over in-memory pipes on plain threads. Fully
//!   deterministic, no sockets, no child processes: what the test
//!   harness, the benches, and `--workers N` default spawning use.
//! * **child-process workers** ([`spawn_process_worker`]) — a spawned
//!   `adhls serve --addr 127.0.0.1:0` child, discovered through its
//!   startup banner and reached over two loopback TCP connections.
//!
//! The router ([`crate::server::router`]) treats both identically; the
//! fault-injection suite substitutes its own [`WorkerLink`]s to inject
//! kills, stalls, and garbage.

use crate::server::session::Server;
use std::collections::VecDeque;
use std::io::{self, BufRead, BufReader, Write};
use std::net::TcpStream;
use std::process::{Child, ChildStdout, Command, Stdio};
use std::sync::{Arc, Condvar, Mutex};
use std::time::Duration;

/// One line-oriented duplex channel to a worker backend.
///
/// A link is *sequential*: the holder writes one request line, then reads
/// response lines until the request's terminal message. Any `Err` from
/// either side poisons the link (a partial line may have been consumed);
/// the router responds by retiring the worker, never by resyncing.
pub trait WorkerLink: Send {
    /// Writes one request line (the newline is appended) and flushes.
    ///
    /// # Errors
    ///
    /// The transport's write error; the worker should be considered gone.
    fn send_line(&mut self, line: &str) -> io::Result<()>;

    /// Reads one response line (newline stripped). `Ok(None)` is orderly
    /// EOF — the worker closed its end.
    ///
    /// # Errors
    ///
    /// Transport errors; `ErrorKind::WouldBlock`/`TimedOut` mean the
    /// configured receive timeout elapsed (a stalled worker).
    fn recv_line(&mut self) -> io::Result<Option<String>>;

    /// Bounds every subsequent [`WorkerLink::recv_line`] wait (`None` =
    /// wait forever, the default).
    ///
    /// # Errors
    ///
    /// The transport's error when the timeout cannot be set.
    fn set_recv_timeout(&mut self, timeout: Option<Duration>) -> io::Result<()>;
}

/// Stops a worker's execution vehicle when the router retires it (kills
/// the child process; lets in-process threads unwind off their dropped
/// pipes).
pub trait WorkerGuard: Send {
    /// Best-effort teardown; must be idempotent.
    fn stop(&mut self);
}

/// A connected worker: its two links plus the teardown guard.
pub struct WorkerHandle {
    /// The request channel (one sweep/refine in flight at a time).
    pub data: Box<dyn WorkerLink>,
    /// The out-of-band channel (`cancel`, aggregation probes).
    pub ctrl: Box<dyn WorkerLink>,
    /// Teardown hook invoked when the worker is retired.
    pub guard: Option<Box<dyn WorkerGuard>>,
}

impl std::fmt::Debug for WorkerHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WorkerHandle").finish_non_exhaustive()
    }
}

/// Spawns (or re-spawns, after a fault) one worker; the argument is the
/// worker's slot index. What the router calls on startup and on restart,
/// and what the fault harness overrides to hand out rigged links.
pub type WorkerFactory = Box<dyn Fn(usize) -> io::Result<WorkerHandle> + Send + Sync>;

impl WorkerHandle {
    /// An in-process worker: two connections onto `server`, each served by
    /// a plain thread over in-memory pipes. The threads exit when the
    /// handle's links drop (their read side sees EOF) or when the server
    /// shuts down; the guard holds the server so a retirement can request
    /// that explicitly.
    #[must_use]
    pub fn in_process(server: Arc<Server>) -> WorkerHandle {
        let data = pipe_connection(&server);
        let ctrl = pipe_connection(&server);
        WorkerHandle {
            data: Box::new(data),
            ctrl: Box::new(ctrl),
            guard: Some(Box::new(InProcessGuard { server })),
        }
    }
}

struct InProcessGuard {
    server: Arc<Server>,
}

impl WorkerGuard for InProcessGuard {
    fn stop(&mut self) {
        self.server.request_shutdown();
    }
}

/// One served in-memory connection: the worker side runs
/// [`Server::serve_connection`] on its own thread; the returned link is
/// the client side.
fn pipe_connection(server: &Arc<Server>) -> PipeLink {
    let (req_tx, req_rx) = pipe();
    let (resp_tx, resp_rx) = pipe();
    let srv = Arc::clone(server);
    std::thread::spawn(move || {
        // A per-connection error (e.g. the router dropped mid-response)
        // ends this connection, exactly like a TCP reset would.
        let _ = srv.serve_connection(BufReader::new(req_rx), resp_tx);
    });
    PipeLink {
        tx: req_tx,
        rx: BufReader::new(resp_rx),
    }
}

/// Client side of an in-memory worker connection.
pub struct PipeLink {
    tx: PipeWriter,
    rx: BufReader<PipeReader>,
}

impl WorkerLink for PipeLink {
    fn send_line(&mut self, line: &str) -> io::Result<()> {
        self.tx.write_all(line.as_bytes())?;
        self.tx.write_all(b"\n")?;
        self.tx.flush()
    }

    fn recv_line(&mut self) -> io::Result<Option<String>> {
        let mut line = String::new();
        match self.rx.read_line(&mut line)? {
            0 => Ok(None),
            _ => {
                while line.ends_with('\n') || line.ends_with('\r') {
                    line.pop();
                }
                Ok(Some(line))
            }
        }
    }

    fn set_recv_timeout(&mut self, timeout: Option<Duration>) -> io::Result<()> {
        self.rx.get_mut().timeout = timeout;
        Ok(())
    }
}

/// The shared buffer behind one direction of an in-memory pipe.
#[derive(Default)]
struct PipeShared {
    state: Mutex<PipeState>,
    readable: Condvar,
}

#[derive(Default)]
struct PipeState {
    buf: VecDeque<u8>,
    closed: bool,
}

/// Write half of an in-memory byte pipe (see [`pipe`]). Dropping it closes
/// the pipe; the reader then drains what is buffered and reports EOF.
pub struct PipeWriter {
    shared: Arc<PipeShared>,
}

/// Read half of an in-memory byte pipe (see [`pipe`]). Reads block until
/// data, EOF, or the configured timeout (`ErrorKind::TimedOut`).
pub struct PipeReader {
    shared: Arc<PipeShared>,
    /// Bounds each blocking read; `None` waits forever.
    pub timeout: Option<Duration>,
}

/// An in-memory unidirectional byte pipe: what in-process workers speak
/// over instead of sockets, keeping multi-worker tests deterministic and
/// port-free.
#[must_use]
pub fn pipe() -> (PipeWriter, PipeReader) {
    let shared = Arc::new(PipeShared::default());
    (
        PipeWriter {
            shared: Arc::clone(&shared),
        },
        PipeReader {
            shared,
            timeout: None,
        },
    )
}

impl Write for PipeWriter {
    fn write(&mut self, data: &[u8]) -> io::Result<usize> {
        let mut st = self.shared.state.lock().expect("pipe lock poisoned");
        if st.closed {
            return Err(io::Error::new(
                io::ErrorKind::BrokenPipe,
                "pipe reader dropped",
            ));
        }
        st.buf.extend(data);
        drop(st);
        self.shared.readable.notify_all();
        Ok(data.len())
    }

    fn flush(&mut self) -> io::Result<()> {
        Ok(())
    }
}

impl Drop for PipeWriter {
    fn drop(&mut self) {
        let mut st = self.shared.state.lock().expect("pipe lock poisoned");
        st.closed = true;
        drop(st);
        self.shared.readable.notify_all();
    }
}

impl io::Read for PipeReader {
    fn read(&mut self, out: &mut [u8]) -> io::Result<usize> {
        let mut st = self.shared.state.lock().expect("pipe lock poisoned");
        loop {
            if !st.buf.is_empty() {
                let n = out.len().min(st.buf.len());
                for slot in out.iter_mut().take(n) {
                    *slot = st.buf.pop_front().expect("buffer length checked");
                }
                return Ok(n);
            }
            if st.closed {
                return Ok(0);
            }
            st = match self.timeout {
                None => self.shared.readable.wait(st).expect("pipe lock poisoned"),
                Some(t) => {
                    let (guard, timed_out) = self
                        .shared
                        .readable
                        .wait_timeout(st, t)
                        .expect("pipe lock poisoned");
                    if timed_out.timed_out() && guard.buf.is_empty() && !guard.closed {
                        return Err(io::Error::new(
                            io::ErrorKind::TimedOut,
                            "pipe read timed out",
                        ));
                    }
                    guard
                }
            };
        }
    }
}

impl Drop for PipeReader {
    fn drop(&mut self) {
        // Closing the read side makes further writes fail fast instead of
        // buffering into a pipe nobody will drain.
        let mut st = self.shared.state.lock().expect("pipe lock poisoned");
        st.closed = true;
        drop(st);
        self.shared.readable.notify_all();
    }
}

/// A worker link over a TCP connection (child-process workers).
pub struct TcpLink {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

impl TcpLink {
    /// Wraps a connected stream.
    ///
    /// # Errors
    ///
    /// When the stream cannot be cloned for the read side.
    pub fn new(stream: TcpStream) -> io::Result<TcpLink> {
        Ok(TcpLink {
            reader: BufReader::new(stream.try_clone()?),
            writer: stream,
        })
    }
}

impl WorkerLink for TcpLink {
    fn send_line(&mut self, line: &str) -> io::Result<()> {
        self.writer.write_all(line.as_bytes())?;
        self.writer.write_all(b"\n")?;
        self.writer.flush()
    }

    fn recv_line(&mut self) -> io::Result<Option<String>> {
        let mut line = String::new();
        match self.reader.read_line(&mut line)? {
            0 => Ok(None),
            _ => {
                while line.ends_with('\n') || line.ends_with('\r') {
                    line.pop();
                }
                Ok(Some(line))
            }
        }
    }

    fn set_recv_timeout(&mut self, timeout: Option<Duration>) -> io::Result<()> {
        self.reader.get_ref().set_read_timeout(timeout)
    }
}

struct ProcessGuard {
    child: Child,
    /// Held open so a late child write never hits a closed pipe.
    _stdout: Option<ChildStdout>,
}

impl WorkerGuard for ProcessGuard {
    fn stop(&mut self) {
        // The router sends `shutdown` over the control link first; the
        // kill is the backstop for a child that no longer listens.
        let _ = self.child.kill();
        let _ = self.child.wait();
    }
}

/// Spawns a child-process worker from `cmd` (typically `adhls serve --addr
/// 127.0.0.1:0 ...`), waits for its `listening on <addr>` banner on
/// stdout, and connects the data + control links over loopback TCP.
///
/// # Errors
///
/// Spawn failures, a child that exits or closes stdout before announcing
/// its address, an unparseable banner, or connection failures (the child
/// is killed before the error returns).
pub fn spawn_process_worker(cmd: &mut Command) -> io::Result<WorkerHandle> {
    cmd.stdin(Stdio::null()).stdout(Stdio::piped());
    let mut child = cmd.spawn()?;
    let stdout = child.stdout.take().expect("stdout was piped");
    let mut lines = BufReader::new(stdout);
    let addr = loop {
        let mut line = String::new();
        match lines.read_line(&mut line) {
            Ok(0) => {
                let _ = child.kill();
                let _ = child.wait();
                return Err(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    "worker exited before announcing its address",
                ));
            }
            Ok(_) => {
                if let Some((_, addr)) = line.trim().rsplit_once("listening on ") {
                    break addr.trim().to_string();
                }
            }
            Err(e) => {
                let _ = child.kill();
                let _ = child.wait();
                return Err(e);
            }
        }
    };
    let connect = |what: &str| -> io::Result<TcpLink> {
        let stream = TcpStream::connect(&addr).map_err(|e| {
            io::Error::new(e.kind(), format!("connecting {what} link to {addr}: {e}"))
        })?;
        stream.set_nodelay(true)?;
        TcpLink::new(stream)
    };
    let data = match connect("data") {
        Ok(l) => l,
        Err(e) => {
            let _ = child.kill();
            let _ = child.wait();
            return Err(e);
        }
    };
    let ctrl = match connect("control") {
        Ok(l) => l,
        Err(e) => {
            let _ = child.kill();
            let _ = child.wait();
            return Err(e);
        }
    };
    Ok(WorkerHandle {
        data: Box::new(data),
        ctrl: Box::new(ctrl),
        guard: Some(Box::new(ProcessGuard {
            child,
            _stdout: Some(lines.into_inner()),
        })),
    })
}

/// A [`WorkerFactory`] spawning in-process thread workers, each with its
/// **own** [`EvaluatorPool`](crate::pool::EvaluatorPool) built from
/// `make_pool` — so every worker owns a private cache shard, exactly like
/// separate processes would (the router's consistent hashing is what keeps
/// each shard warm).
#[must_use]
pub fn in_process_factory(
    make_pool: impl Fn(usize) -> crate::pool::EvaluatorPool + Send + Sync + 'static,
) -> WorkerFactory {
    Box::new(move |idx| {
        Ok(WorkerHandle::in_process(Arc::new(Server::new(make_pool(
            idx,
        )))))
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Read as _;

    #[test]
    fn pipes_carry_bytes_and_report_eof() {
        let (mut tx, mut rx) = pipe();
        tx.write_all(b"hello\n").unwrap();
        drop(tx);
        let mut all = String::new();
        rx.read_to_string(&mut all).unwrap();
        assert_eq!(all, "hello\n");
        assert_eq!(rx.read(&mut [0u8; 4]).unwrap(), 0, "EOF after close");
    }

    #[test]
    fn pipe_reads_time_out_when_configured() {
        let (_tx, mut rx) = pipe();
        rx.timeout = Some(Duration::from_millis(20));
        let err = rx.read(&mut [0u8; 4]).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::TimedOut);
    }

    #[test]
    fn dropped_reader_fails_writes_fast() {
        let (mut tx, rx) = pipe();
        drop(rx);
        let err = tx.write_all(b"x").unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::BrokenPipe);
    }
}
