//! The multi-worker serve front-end: one router, N worker backends.
//!
//! `adhls serve --workers N` turns the daemon into a router/aggregator:
//! clients still speak the exact protocol of `docs/PROTOCOL.md`, but every
//! `sweep`/`refine` is forwarded to one of N workers — each an ordinary
//! [`Server`](crate::server::session::Server) over its own
//! [`EvaluatorPool`](crate::pool::EvaluatorPool) — over the same line-JSON
//! wire format, now acting as a *backend dialect*.
//!
//! Three properties carry the design:
//!
//! * **Sharded warm cache.** Requests are placed by rendezvous
//!   (highest-random-weight) hashing of
//!   [`routing_fingerprint`](crate::server::session::routing_fingerprint())
//!   — a pure function of the workload spec — so repeats of a design land
//!   on the same worker and hit its warm point/prefix cache, and the loss
//!   of one worker reshuffles only that worker's share of the key space.
//! * **Byte-transparent forwarding.** The router forwards the client's
//!   request line *verbatim* and relays the worker's response lines
//!   *verbatim* (workers derive response ids exactly as a direct server
//!   would), so a routed request's rows are bit-identical to a single-pool
//!   run — the router never re-renders floats. Response lines are
//!   validated against the expected `{"id":...,` prefix; anything else is
//!   treated as a worker fault.
//! * **Contained failure.** A worker that dies, stalls past the receive
//!   timeout, or emits garbage is retired and respawned in place (same
//!   slot → same hash shard, so the replacement re-warms the same keys);
//!   if respawning fails the slot is marked dead and the request is
//!   rehashed onto the surviving workers. Rounds already streamed to the
//!   client are not re-sent on retry — refinement rounds are
//!   deterministic, so the retried worker's first K rounds are exactly the
//!   K already relayed.
//!
//! Backpressure is explicit: each worker has a queue cap (requests beyond
//! it get a structured `busy` result instead of unbounded queuing) and the
//! TCP front-end has a connection bound. `cancel` is forwarded over the
//! owning worker's control link so it bypasses the data queue and reaches
//! a mid-refine worker immediately.

use crate::fingerprint::Fnv;
use crate::server::protocol::{self, Command};
use crate::server::session::{self, routing_fingerprint, LineStatus, MAX_REQUEST_BYTES};
use crate::server::worker::{WorkerFactory, WorkerGuard, WorkerLink};
use adhls_core::json::Value;
use adhls_telemetry::{Registry, Snapshot};
use std::collections::{BTreeMap, HashMap};
use std::io::{BufRead, BufReader, Read, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Mutex, MutexGuard};
use std::time::{Duration, Instant};

/// Sizing and fault-handling knobs for a [`Router`].
#[derive(Debug, Clone)]
pub struct RouterOptions {
    /// Worker backends (≥ 1; `new` clamps 0 up).
    pub workers: usize,
    /// Per-worker in-flight/queued request cap: a request routed to a
    /// worker already holding this many gets an immediate `busy` result.
    pub queue_cap: usize,
    /// TCP connection bound for [`Router::serve_tcp`]; connections beyond
    /// it are answered with one `busy` line and closed.
    pub max_connections: usize,
    /// Worker faults tolerated per request before the client gets an
    /// error (each fault costs one respawn or reassignment).
    pub retries: usize,
    /// Bound on each data-link read while waiting on a worker; `None`
    /// (the default) trusts workers not to stall — a refinement round can
    /// legitimately take arbitrarily long, so only set this when worker
    /// round-time is bounded (tests, fault drills).
    pub recv_timeout: Option<Duration>,
    /// Bound on control-link reads (`cancel`, `stats`/`metrics` probes,
    /// shutdown). Control responses never run HLS, so the short default
    /// keeps a stalled worker from wedging aggregation.
    pub ctrl_recv_timeout: Option<Duration>,
}

impl Default for RouterOptions {
    fn default() -> Self {
        RouterOptions {
            workers: 2,
            queue_cap: 64,
            max_connections: 256,
            retries: 2,
            recv_timeout: None,
            ctrl_recv_timeout: Some(Duration::from_secs(5)),
        }
    }
}

/// The data-link half of a worker slot: the request channel plus the
/// teardown guard, retired and replaced together.
struct DataHalf {
    link: Box<dyn WorkerLink>,
    guard: Option<Box<dyn WorkerGuard>>,
}

/// One worker position. The slot index — not the worker instance — is the
/// unit of hashing, so a respawned worker inherits its predecessor's key
/// shard.
#[derive(Default)]
struct Slot {
    /// Lock order: `data` before `ctrl` (never the reverse).
    data: Mutex<Option<DataHalf>>,
    ctrl: Mutex<Option<Box<dyn WorkerLink>>>,
    /// Routed-but-unfinished requests, for the queue cap.
    pending: AtomicUsize,
    /// Set when a respawn fails; dead slots are skipped by placement until
    /// a later spawn succeeds.
    dead: AtomicBool,
}

/// A router/aggregator serving the client protocol over N worker
/// backends. See the [module docs](self) for the design.
pub struct Router {
    factory: WorkerFactory,
    slots: Vec<Slot>,
    opts: RouterOptions,
    /// The router's own registry (always enabled): request accounting and
    /// `serve.worker.*` fault counters. Worker registries are aggregated
    /// into it on `stats`/`metrics`.
    registry: Registry,
    requests: AtomicU64,
    shutdown: AtomicBool,
    started: Instant,
    connections: AtomicUsize,
    /// In-flight *refine* requests by rendered client `id` → slot index,
    /// so `cancel` from any connection finds the owning worker.
    inflight: Mutex<HashMap<String, usize>>,
}

impl std::fmt::Debug for Router {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Router")
            .field("workers", &self.slots.len())
            .field("opts", &self.opts)
            .finish_non_exhaustive()
    }
}

/// How a forwarding attempt on one worker ended short of a relayed
/// terminal line.
enum Fault {
    /// The factory could not produce a worker for this slot.
    Spawn(String),
    /// The link failed mid-request (send error, EOF, stall, garbage).
    Link(&'static str),
}

impl Fault {
    fn describe(&self) -> String {
        match self {
            Fault::Spawn(e) => format!("worker failed to start: {e}"),
            Fault::Link(why) => (*why).to_string(),
        }
    }
}

impl Router {
    /// Builds the router and eagerly spawns every worker through
    /// `factory`, so the first routed request finds a live backend.
    ///
    /// # Errors
    ///
    /// The factory's error if any initial worker fails to spawn.
    pub fn new(factory: WorkerFactory, opts: RouterOptions) -> std::io::Result<Router> {
        let workers = opts.workers.max(1);
        let registry = Registry::new();
        registry.set_enabled(true);
        let router = Router {
            factory,
            slots: (0..workers).map(|_| Slot::default()).collect(),
            opts,
            registry,
            requests: AtomicU64::new(0),
            shutdown: AtomicBool::new(false),
            started: Instant::now(),
            connections: AtomicUsize::new(0),
            inflight: Mutex::new(HashMap::new()),
        };
        for idx in 0..workers {
            let handle = (router.factory)(idx)?;
            let slot = &router.slots[idx];
            let mut data = lock(&slot.data);
            router.install(slot, &mut data, handle);
        }
        Ok(router)
    }

    /// The router's own telemetry registry (fault and accounting
    /// counters; worker metrics are merged in only at snapshot time).
    #[must_use]
    pub fn telemetry(&self) -> &Registry {
        &self.registry
    }

    /// Number of worker slots (dead or alive).
    #[must_use]
    pub fn workers(&self) -> usize {
        self.slots.len()
    }

    /// Asks the serve loops to wind down (the TCP accept loop stops and
    /// connection loops exit at their next idle moment). Workers are shut
    /// down by the `shutdown` verb handler, not here.
    pub fn request_shutdown(&self) {
        self.shutdown.store(true, Ordering::Release);
    }

    /// True once shutdown has been requested.
    #[must_use]
    pub fn is_shutting_down(&self) -> bool {
        self.shutdown.load(Ordering::Acquire)
    }

    /// Wires a fresh worker handle into `slot` (data lock already held by
    /// the caller — see the [`Slot`] lock order).
    fn install(
        &self,
        slot: &Slot,
        data: &mut Option<DataHalf>,
        mut handle: super::worker::WorkerHandle,
    ) {
        let _ = handle.data.set_recv_timeout(self.opts.recv_timeout);
        let _ = handle.ctrl.set_recv_timeout(self.opts.ctrl_recv_timeout);
        *data = Some(DataHalf {
            link: handle.data,
            guard: handle.guard,
        });
        *lock(&slot.ctrl) = Some(handle.ctrl);
        slot.dead.store(false, Ordering::Release);
        self.registry.counter_add("serve.worker.spawns", 1);
    }

    /// Tears a faulted worker out of `slot` (data lock held): stops its
    /// guard and drops both links, so the next attempt spawns afresh.
    fn retire(&self, slot: &Slot, data: &mut Option<DataHalf>) {
        if let Some(mut half) = data.take() {
            if let Some(guard) = half.guard.as_mut() {
                guard.stop();
            }
        }
        *lock(&slot.ctrl) = None;
    }

    /// Rendezvous placement: among live slots (excluding `exclude`), the
    /// one whose `Fnv(key, index)` weight is highest. Every router ranks
    /// a key identically, each key's shard moves only when its own winner
    /// dies, and dead workers shed load evenly over the survivors.
    fn pick(&self, key: u64, exclude: Option<usize>) -> Option<usize> {
        self.slots
            .iter()
            .enumerate()
            .filter(|&(i, s)| Some(i) != exclude && !s.dead.load(Ordering::Acquire))
            .max_by_key(|&(i, _)| {
                let mut h = Fnv::default();
                h.u64(key).u64(i as u64);
                (h.digest(), i)
            })
            .map(|(i, _)| i)
    }

    /// One forwarding attempt on slot `idx`: spawn if empty, send the raw
    /// request line, relay response lines until the terminal result.
    /// `rounds_sent` counts progress events already relayed to the client
    /// so a retry (deterministic rounds) skips re-sending them.
    ///
    /// The outer `Err` is a *client-side* write failure; worker-side
    /// trouble is the inner [`Fault`].
    fn attempt(
        &self,
        idx: usize,
        line: &str,
        prefix: &str,
        rounds_sent: &mut usize,
        out: &mut dyn Write,
    ) -> std::io::Result<Result<(), Fault>> {
        let slot = &self.slots[idx];
        let mut data = lock(&slot.data);
        if data.is_none() {
            match (self.factory)(idx) {
                Ok(handle) => self.install(slot, &mut data, handle),
                Err(e) => return Ok(Err(Fault::Spawn(e.to_string()))),
            }
        }
        let half = data.as_mut().expect("worker installed above");
        if half.link.send_line(line).is_err() {
            self.retire(slot, &mut data);
            return Ok(Err(Fault::Link("worker rejected the request write")));
        }
        let mut seen = 0usize;
        loop {
            match half.link.recv_line() {
                Ok(Some(resp)) => {
                    let Some(rest) = resp.strip_prefix(prefix) else {
                        self.retire(slot, &mut data);
                        return Ok(Err(Fault::Link("worker emitted a malformed response")));
                    };
                    if rest.starts_with("\"event\":\"result\"") {
                        writeln!(out, "{resp}")?;
                        out.flush()?;
                        return Ok(Ok(()));
                    }
                    // A streamed progress event: relay it unless an earlier
                    // attempt already delivered this round.
                    if seen >= *rounds_sent {
                        writeln!(out, "{resp}")?;
                        out.flush()?;
                        *rounds_sent += 1;
                    }
                    seen += 1;
                }
                Ok(None) => {
                    self.retire(slot, &mut data);
                    return Ok(Err(Fault::Link("worker closed the connection mid-request")));
                }
                Err(e)
                    if matches!(
                        e.kind(),
                        std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                    ) =>
                {
                    self.retire(slot, &mut data);
                    return Ok(Err(Fault::Link("worker stalled past the receive timeout")));
                }
                Err(_) => {
                    self.retire(slot, &mut data);
                    return Ok(Err(Fault::Link("worker link failed mid-response")));
                }
            }
        }
    }

    /// Routes one `sweep`/`refine` line: place by `key`, apply the queue
    /// cap, then attempt/retry/reassign until a terminal line reaches the
    /// client. Returns whether the client-visible outcome was a success.
    fn forward(
        &self,
        key: u64,
        id: Option<&Value>,
        line: &str,
        inflight_key: Option<&str>,
        out: &mut dyn Write,
    ) -> std::io::Result<bool> {
        let Some(mut idx) = self.pick(key, None) else {
            writeln!(out, "{}", protocol::render_error(id, "no live workers"))?;
            return Ok(false);
        };
        let slot = &self.slots[idx];
        let pending = slot.pending.fetch_add(1, Ordering::SeqCst) + 1;
        if pending > self.opts.queue_cap {
            slot.pending.fetch_sub(1, Ordering::SeqCst);
            self.registry.counter_add("serve.rejected", 1);
            let msg = format!(
                "worker {idx} is at its queue cap ({}); retry later",
                self.opts.queue_cap
            );
            writeln!(out, "{}", protocol::render_busy(id, &msg))?;
            return Ok(false);
        }
        let _pending = PendingGuard(slot);
        if let Some(k) = inflight_key {
            lock(&self.inflight).insert(k.to_string(), idx);
        }
        let prefix = id_prefix(id);
        let mut rounds_sent = 0usize;
        let mut attempts = 0usize;
        loop {
            attempts += 1;
            let fault = match self.attempt(idx, line, &prefix, &mut rounds_sent, out)? {
                Ok(()) => return Ok(true),
                Err(f) => f,
            };
            self.registry.counter_add("serve.worker.faults", 1);
            if attempts > self.opts.retries {
                let msg = format!(
                    "request failed after {attempts} attempts: {}",
                    fault.describe()
                );
                writeln!(out, "{}", protocol::render_error(id, &msg))?;
                return Ok(false);
            }
            // Prefer restarting the same slot — it owns this key's cache
            // shard. Only when a replacement cannot be spawned does the
            // request (and, implicitly, the shard) move elsewhere.
            if self.respawn(idx) {
                self.registry.counter_add("serve.worker.restarts", 1);
            } else {
                self.slots[idx].dead.store(true, Ordering::Release);
                let Some(next) = self.pick(key, Some(idx)) else {
                    writeln!(out, "{}", protocol::render_error(id, "no live workers"))?;
                    return Ok(false);
                };
                self.registry.counter_add("serve.worker.reassigned", 1);
                idx = next;
                if let Some(k) = inflight_key {
                    lock(&self.inflight).insert(k.to_string(), idx);
                }
            }
        }
    }

    /// Spawns a replacement into slot `idx`; `false` means the factory
    /// refused (the caller marks the slot dead and reassigns).
    fn respawn(&self, idx: usize) -> bool {
        let slot = &self.slots[idx];
        let mut data = lock(&slot.data);
        if data.is_some() {
            // Another request already respawned this slot.
            return true;
        }
        match (self.factory)(idx) {
            Ok(handle) => {
                self.install(slot, &mut data, handle);
                true
            }
            Err(_) => false,
        }
    }

    /// Forwards a `cancel` over the owning worker's control link (found
    /// via the in-flight map) and relays its answer verbatim.
    fn forward_cancel(
        &self,
        id: Option<&Value>,
        target: &Value,
        line: &str,
        out: &mut dyn Write,
    ) -> std::io::Result<bool> {
        let owner = lock(&self.inflight).get(&target.render()).copied();
        let Some(idx) = owner else {
            let msg = format!("no in-flight request with id {}", target.render());
            writeln!(out, "{}", protocol::render_error(id, &msg))?;
            return Ok(false);
        };
        let mut ctrl = lock(&self.slots[idx].ctrl);
        let resp = ctrl.as_mut().and_then(|link| {
            link.send_line(line).ok()?;
            link.recv_line().ok().flatten()
        });
        let Some(resp) = resp else {
            *ctrl = None;
            let msg = format!("worker {idx} is unreachable; its requests will be retried");
            writeln!(out, "{}", protocol::render_error(id, &msg))?;
            return Ok(false);
        };
        let prefix = id_prefix(id);
        let ok = resp
            .strip_prefix(&prefix)
            .is_some_and(|rest| rest.starts_with("\"event\":\"result\",\"ok\":true"));
        if ok {
            self.registry.counter_add("serve.cancel.forwarded", 1);
        }
        writeln!(out, "{resp}")?;
        Ok(ok)
    }

    /// Queries one worker's `metrics` over its control link. `None` when
    /// the worker is down or answers garbage (its share is then simply
    /// absent from the aggregate).
    fn query_worker_metrics(&self, slot: &Slot) -> Option<Value> {
        let mut ctrl = lock(&slot.ctrl);
        let link = ctrl.as_mut()?;
        if link.send_line("{\"id\":null,\"cmd\":\"metrics\"}").is_err() {
            *ctrl = None;
            return None;
        }
        match link.recv_line() {
            Ok(Some(line)) => Value::parse(&line).ok(),
            _ => {
                *ctrl = None;
                None
            }
        }
    }

    /// One aggregated snapshot across the router and every live worker.
    ///
    /// Worker counters and gauges are **summed**, except worker `serve.*`
    /// request accounting (`serve.requests`, `serve.ok`, …): the router
    /// already counts every client request once, and each forwarded
    /// request is counted again by its worker — summing both would
    /// double-count, so worker `serve.*` entries are dropped.
    /// `serve.cancelled` is the one exception (kept and summed): only the
    /// worker running a refine can observe its cancellation, and the
    /// router has no counterpart entry to collide with. Worker histograms
    /// are not merged (bucket-merge is not worth the complexity); the
    /// router's own `serve.request.*` latency histograms — which span the
    /// full routed round trip — are reported instead.
    #[must_use]
    #[allow(clippy::cast_possible_truncation, clippy::cast_possible_wrap)]
    pub fn metrics_snapshot(&self) -> Snapshot {
        let mut snap = self.registry.snapshot();
        let mut counters: BTreeMap<String, u64> = BTreeMap::new();
        let mut gauges: BTreeMap<String, i64> = BTreeMap::new();
        let mut alive = 0i64;
        for slot in &self.slots {
            let Some(doc) = self.query_worker_metrics(slot) else {
                continue;
            };
            alive += 1;
            let Some(metrics) = doc.get("metrics") else {
                continue;
            };
            if let Some(Value::Obj(pairs)) = metrics.get("counters") {
                for (name, v) in pairs {
                    if name.starts_with("serve.") && name != "serve.cancelled" {
                        continue;
                    }
                    if let Some(n) = v.as_u64() {
                        *counters.entry(name.clone()).or_insert(0) += n;
                    }
                }
            }
            if let Some(Value::Obj(pairs)) = metrics.get("gauges") {
                for (name, v) in pairs {
                    if name.starts_with("serve.") {
                        continue;
                    }
                    if let Some(n) = v.as_f64() {
                        *gauges.entry(name.clone()).or_insert(0) += n as i64;
                    }
                }
            }
        }
        for (name, v) in &counters {
            snap.push_counter(name, *v);
        }
        for (name, v) in &gauges {
            snap.push_gauge(name, *v);
        }
        snap.push_counter("serve.requests", self.requests.load(Ordering::Relaxed));
        snap.push_gauge("serve.uptime_ms", self.started.elapsed().as_millis() as i64);
        snap.push_gauge("serve.workers", alive);
        snap.sort();
        snap
    }

    /// Sends `shutdown` to every worker (control link, best-effort), then
    /// stops their guards. Waits on each slot's data lock, so in-flight
    /// requests finish before their worker goes down.
    fn shutdown_workers(&self) {
        for slot in &self.slots {
            let mut data = lock(&slot.data);
            {
                let mut ctrl = lock(&slot.ctrl);
                if let Some(link) = ctrl.as_mut() {
                    let _ = link.send_line("{\"cmd\":\"shutdown\"}");
                    let _ = link.recv_line();
                }
                *ctrl = None;
            }
            if let Some(mut half) = data.take() {
                if let Some(guard) = half.guard.as_mut() {
                    guard.stop();
                }
            }
            slot.dead.store(true, Ordering::Release);
        }
    }

    /// Handles one request line, mirroring
    /// [`Server::handle_line`](crate::server::session::Server::handle_line):
    /// same accounting (`serve.requests`, `serve.ok`/`serve.errors`,
    /// `serve.request.<verb>` latency), same return contract (`false`
    /// closes the connection).
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from `out`; worker-side and request-level
    /// problems become `ok:false` result lines instead.
    pub fn handle_line(&self, line: &str, out: &mut dyn Write) -> std::io::Result<bool> {
        let line = line.trim();
        if line.is_empty() {
            return Ok(true);
        }
        self.requests.fetch_add(1, Ordering::Relaxed);
        let _in_flight = self.registry.gauge_guard("serve.in_flight");
        self.registry
            .counter_add("serve.bytes_read", line.len() as u64);
        let started = Instant::now();
        let (id, cmd) = protocol::parse_request(line);
        let verb = cmd.as_ref().map_or("invalid", |c| c.verb());
        let (keep_going, ok) = self.dispatch(id.as_ref(), cmd, line, out)?;
        out.flush()?;
        let us = started.elapsed().as_secs_f64() * 1e6;
        self.registry.observe(&format!("serve.request.{verb}"), us);
        self.registry
            .counter_add(if ok { "serve.ok" } else { "serve.errors" }, 1);
        Ok(keep_going)
    }

    /// Runs one parsed request: local verbs (`ping`, `stats`, `metrics`,
    /// `shutdown`) are answered by the router itself; `cancel` goes over
    /// the owning worker's control link; `sweep`/`refine` are routed.
    fn dispatch(
        &self,
        id: Option<&Value>,
        cmd: Result<Command, String>,
        line: &str,
        out: &mut dyn Write,
    ) -> std::io::Result<(bool, bool)> {
        let mut keep_going = true;
        let ok = match cmd {
            Err(msg) => {
                writeln!(out, "{}", protocol::render_error(id, &msg))?;
                false
            }
            Ok(Command::Ping) => {
                writeln!(out, "{}", protocol::render_ok(id, "ping"))?;
                true
            }
            Ok(Command::Shutdown) => {
                self.request_shutdown();
                self.shutdown_workers();
                writeln!(out, "{}", protocol::render_ok(id, "shutdown"))?;
                keep_going = false;
                true
            }
            Ok(Command::Stats) => {
                writeln!(
                    out,
                    "{}",
                    protocol::render_stats(id, &self.metrics_snapshot())
                )?;
                true
            }
            Ok(Command::Metrics) => {
                writeln!(
                    out,
                    "{}",
                    protocol::render_metrics(id, &self.metrics_snapshot())
                )?;
                true
            }
            Ok(Command::Cancel { target }) => self.forward_cancel(id, &target, line, out)?,
            Ok(Command::Sweep(spec)) => {
                // An invalid spec hashes to the fallback shard; the worker
                // repeats the validation and answers with the same error a
                // direct server would.
                let key = routing_fingerprint(&spec).unwrap_or(0);
                self.forward(key, id, line, None, out)?
            }
            Ok(Command::Refine { ref spec, .. }) => {
                let key = routing_fingerprint(spec).unwrap_or(0);
                let inflight_key = id.map(Value::render);
                let _guard = InflightGuard {
                    router: self,
                    key: inflight_key.clone(),
                };
                self.forward(key, id, line, inflight_key.as_deref(), out)?
            }
        };
        Ok((keep_going, ok))
    }

    /// Serves one connection from any reader/writer pair until EOF or a
    /// `shutdown` request — the router-side mirror of
    /// [`Server::serve_connection`](crate::server::session::Server::serve_connection),
    /// with the same oversized-line handling.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from either side.
    pub fn serve_connection(
        &self,
        mut reader: impl BufRead,
        mut writer: impl Write,
    ) -> std::io::Result<()> {
        let mut buf = Vec::new();
        loop {
            match session::fill_line(&mut reader, &mut buf)? {
                LineStatus::Eof => return Ok(()),
                LineStatus::TooLong => return self.refuse_oversized(&mut writer),
                LineStatus::Complete => {
                    if !self.handle_buffered_line(&mut buf, &mut writer)? {
                        return Ok(());
                    }
                }
            }
        }
    }

    /// Dispatches one complete request line accumulated in `buf`,
    /// clearing it for the next line.
    fn handle_buffered_line(
        &self,
        buf: &mut Vec<u8>,
        writer: &mut dyn Write,
    ) -> std::io::Result<bool> {
        let keep_going = match std::str::from_utf8(buf) {
            Ok(line) => self.handle_line(line, writer)?,
            Err(_) => {
                self.count_unparseable_request(buf.len());
                writeln!(
                    writer,
                    "{}",
                    protocol::render_error(None, "request line is not valid UTF-8")
                )?;
                writer.flush()?;
                true
            }
        };
        buf.clear();
        Ok(keep_going)
    }

    /// Answers an over-long request line and gives up on the connection.
    fn refuse_oversized(&self, writer: &mut dyn Write) -> std::io::Result<()> {
        self.count_unparseable_request(MAX_REQUEST_BYTES);
        let msg = format!("request line exceeds {MAX_REQUEST_BYTES} bytes");
        writeln!(writer, "{}", protocol::render_error(None, &msg))?;
        writer.flush()
    }

    /// Accounts a request that never reached [`Router::handle_line`], so
    /// `metrics` totals reconcile with `serve.requests` on every path.
    fn count_unparseable_request(&self, bytes: usize) {
        self.requests.fetch_add(1, Ordering::Relaxed);
        self.registry.counter_add("serve.bytes_read", bytes as u64);
        self.registry.observe("serve.request.invalid", 0.0);
        self.registry.counter_add("serve.errors", 1);
    }

    /// Accepts and serves TCP connections until a `shutdown` request, with
    /// bounded accept: a connection beyond
    /// [`RouterOptions::max_connections`] is answered with one `busy` line
    /// and closed instead of being queued.
    ///
    /// # Errors
    ///
    /// Propagates listener-level I/O errors (per-connection errors only
    /// drop that connection).
    pub fn serve_tcp(&self, listener: &TcpListener) -> std::io::Result<()> {
        listener.set_nonblocking(true)?;
        std::thread::scope(|scope| loop {
            if self.is_shutting_down() {
                return Ok(());
            }
            match listener.accept() {
                Ok((stream, _peer)) => {
                    let admitted =
                        self.connections.fetch_add(1, Ordering::SeqCst) < self.opts.max_connections;
                    if admitted {
                        scope.spawn(move || {
                            let _ = self.serve_socket(stream);
                            self.connections.fetch_sub(1, Ordering::SeqCst);
                        });
                    } else {
                        self.connections.fetch_sub(1, Ordering::SeqCst);
                        self.registry.counter_add("serve.rejected", 1);
                        let _ = self.refuse_connection(stream);
                    }
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                    std::thread::sleep(Duration::from_millis(25));
                }
                Err(e) => return Err(e),
            }
        })
    }

    /// Answers one over-the-limit connection with a structured `busy`
    /// line and closes it.
    fn refuse_connection(&self, mut stream: TcpStream) -> std::io::Result<()> {
        let msg = format!(
            "server is at its connection limit ({}); retry later",
            self.opts.max_connections
        );
        writeln!(stream, "{}", protocol::render_busy(None, &msg))?;
        stream.flush()
    }

    /// One TCP connection, with the same short-read-timeout shutdown
    /// responsiveness as the single-pool server.
    fn serve_socket(&self, stream: TcpStream) -> std::io::Result<()> {
        stream.set_nonblocking(false)?;
        stream.set_read_timeout(Some(Duration::from_millis(200)))?;
        let mut reader = BufReader::new(stream.try_clone()?);
        let mut writer = stream;
        let mut buf = Vec::new();
        loop {
            if self.is_shutting_down() {
                return Ok(());
            }
            match session::fill_line(&mut reader, &mut buf) {
                Ok(LineStatus::Eof) => return Ok(()),
                Ok(LineStatus::TooLong) => return self.refuse_oversized(&mut writer),
                Ok(LineStatus::Complete) => {
                    if !self.handle_buffered_line(&mut buf, &mut writer)? {
                        return Ok(());
                    }
                }
                Err(e)
                    if matches!(
                        e.kind(),
                        std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                    ) => {}
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
                Err(e) => return Err(e),
            }
        }
    }

    /// Serves Prometheus text-format scrapes of the **aggregated**
    /// snapshot until shutdown — the router-mode `--metrics-addr`
    /// listener.
    ///
    /// # Errors
    ///
    /// Propagates listener-level I/O errors (per-connection errors only
    /// drop that scrape).
    pub fn serve_metrics(&self, listener: &TcpListener) -> std::io::Result<()> {
        listener.set_nonblocking(true)?;
        loop {
            if self.is_shutting_down() {
                return Ok(());
            }
            match listener.accept() {
                Ok((stream, _peer)) => {
                    self.registry.counter_add("serve.scrapes", 1);
                    let _ = self.answer_scrape(stream);
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                    std::thread::sleep(Duration::from_millis(25));
                }
                Err(e) => return Err(e),
            }
        }
    }

    /// One exposition response over the aggregated snapshot.
    fn answer_scrape(&self, mut stream: TcpStream) -> std::io::Result<()> {
        stream.set_nonblocking(false)?;
        stream.set_read_timeout(Some(Duration::from_millis(250)))?;
        let mut head = Vec::new();
        let mut chunk = [0u8; 1024];
        loop {
            match stream.read(&mut chunk) {
                Ok(0) => break,
                Ok(n) => {
                    head.extend_from_slice(&chunk[..n]);
                    if head.windows(4).any(|w| w == b"\r\n\r\n") || head.len() >= 8 * 1024 {
                        break;
                    }
                }
                Err(_) => break,
            }
        }
        let body = self.metrics_snapshot().render_prometheus();
        let response = format!(
            "HTTP/1.0 200 OK\r\nContent-Type: text/plain; version=0.0.4\r\n\
             Content-Length: {}\r\nConnection: close\r\n\r\n{body}",
            body.len()
        );
        stream.write_all(response.as_bytes())?;
        stream.flush()
    }
}

/// Decrements a slot's pending count when the routed request finishes —
/// on every path, including client-side write failures.
struct PendingGuard<'a>(&'a Slot);

impl Drop for PendingGuard<'_> {
    fn drop(&mut self) {
        self.0.pending.fetch_sub(1, Ordering::SeqCst);
    }
}

/// Removes a refine's in-flight map entry when it finishes, so `cancel`
/// can never address a completed request's worker.
struct InflightGuard<'a> {
    router: &'a Router,
    key: Option<String>,
}

impl Drop for InflightGuard<'_> {
    fn drop(&mut self) {
        if let Some(key) = self.key.take() {
            lock(&self.router.inflight).remove(&key);
        }
    }
}

/// The response-line prefix every reply to `id` must carry: responses
/// open with the echoed id (see `protocol::open_envelope`), which is what
/// lets the router validate relayed lines without re-rendering them.
fn id_prefix(id: Option<&Value>) -> String {
    let mut p = String::from("{\"id\":");
    match id {
        Some(v) => v.render_into(&mut p),
        None => p.push_str("null"),
    }
    p.push(',');
    p
}

/// Locks a mutex, treating poisoning as fatal (a panic mid-route already
/// lost a response; there is no protocol state to salvage).
fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().expect("router lock poisoned")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rendezvous_is_stable_and_minimal() {
        let slots: Vec<Slot> = (0..4).map(|_| Slot::default()).collect();
        let pick = |key: u64, exclude: Option<usize>| {
            slots
                .iter()
                .enumerate()
                .filter(|&(i, _)| Some(i) != exclude)
                .max_by_key(|&(i, _)| {
                    let mut h = Fnv::default();
                    h.u64(key).u64(i as u64);
                    (h.digest(), i)
                })
                .map(|(i, _)| i)
                .unwrap()
        };
        let mut moved = 0;
        for key in 0..256u64 {
            let a = pick(key, None);
            assert_eq!(a, pick(key, None), "placement must be deterministic");
            let b = pick(key, Some(0));
            if a == 0 {
                assert_ne!(b, 0, "keys on a dead worker must move");
                moved += 1;
            } else {
                assert_eq!(a, b, "keys off the dead worker must not move");
            }
        }
        assert!(moved > 0, "some keys should have hashed to worker 0");
    }

    #[test]
    fn id_prefix_matches_the_envelope() {
        assert_eq!(id_prefix(None), "{\"id\":null,");
        assert_eq!(id_prefix(Some(&Value::Num(7.0))), "{\"id\":7,");
        assert_eq!(id_prefix(Some(&Value::Str("a1".into()))), "{\"id\":\"a1\",");
        let rendered = protocol::render_error(Some(&Value::Num(7.0)), "x");
        assert!(rendered.starts_with(&id_prefix(Some(&Value::Num(7.0)))));
    }
}
