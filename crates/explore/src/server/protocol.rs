//! The exploration server's wire protocol: line-delimited JSON.
//!
//! One request per line in, one message per line out. Every response
//! message echoes the request's `id` (any JSON scalar the client chose, so
//! clients can multiplex requests over one connection) and carries an
//! `event` discriminator:
//!
//! * `"round"` — a streamed progress event, one per adaptive-refinement
//!   round, emitted while the request is still running,
//! * `"result"` — the terminal message for the request, exactly one per
//!   request, with `ok` true/false.
//!
//! Row arrays inside results use the exact field order and number
//! formatting of the file exporters ([`crate::export`]), so a front
//! returned over the wire is byte-comparable with a front exported by the
//! CLI for the same rows. `docs/PROTOCOL.md` documents the full surface
//! with worked examples.

use crate::constraint::{constraints_from_json, constraints_to_json, Constraint};
use crate::engine::SweepResult;
use crate::export::{objectives_to_json, rows_to_json_line};
use crate::pareto::{tradeoff_staircase_in_constrained, ObjectiveSpace};
use crate::refine::{MultiRefineResult, MultiRoundTrace, RefineResult, RoundTrace};
use adhls_core::dse::{summarize, DseRow};
use adhls_core::json::{escape_into, Value};
use adhls_core::PointMode;
use adhls_telemetry::Snapshot;
use std::fmt::Write as _;

/// What to explore: a named workload grid or an inline DSL design, plus
/// optional axis overrides. Shared by `sweep` and `refine` requests (and
/// reused by the CLI, so the server and `adhls explore` accept the same
/// axes with the same validation).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct WorkloadSpec {
    /// Named workload (`interpolation | idct | idct-table4 | fir | matmul
    /// | random`), mutually exclusive with `dsl`.
    pub workload: Option<String>,
    /// Inline DSL source, mutually exclusive with `workload`.
    pub dsl: Option<String>,
    /// Point-name prefix for DSL sweeps (defaults to the design's name).
    pub dsl_prefix: Option<String>,
    /// Clock axis override (ps).
    pub clocks: Option<Vec<u64>>,
    /// Latency-budget axis override (cycles).
    pub cycles: Option<Vec<u32>>,
    /// Pipelining axis override (`null` = sequential).
    pub pipeline: Option<Vec<Option<u32>>>,
    /// Matrix dimension for the matmul workload.
    pub dim: Option<usize>,
    /// Fleet size for the random workload.
    pub count: Option<usize>,
    /// Seed for the random workload.
    pub seed: Option<u64>,
    /// The objective space(s) the request selects (`objectives` field: an
    /// array of axis names, one comma-separated string, or — multi-plane —
    /// a `;`-separated string / array of planes; the same grammar as CLI
    /// `--objectives`, see [`ObjectiveSpace::multi_from_json`]). `None`
    /// applies the surface default: all four axes for sweep fronts, the
    /// (area, latency) plane for refinement (see
    /// [`crate::server::session::sweep_spaces`] /
    /// [`crate::server::session::refine_spaces`]).
    pub objectives: Option<Vec<ObjectiveSpace>>,
    /// Objective bounds (`constraints` field: an array of strings like
    /// `"area<=1500"`, or one comma-separated string) every returned
    /// front/staircase honors and adaptive refinement clips to. Each
    /// bound's axis must be selected by the active objective space(s).
    pub constraints: Vec<Constraint>,
    /// How the request's points are evaluated (`mode` field:
    /// `"full" | "recover" | "auto"`, default full). Recover replaces the
    /// slack-based flow with post-binding slack recovery; auto chooses per
    /// cell. One shared pool serves mixed-mode requests — the mode is part
    /// of every row's cache key.
    pub mode: PointMode,
}

/// One parsed request.
#[derive(Debug, Clone, PartialEq)]
pub enum Command {
    /// Evaluate a full grid (or point fleet) and return rows + front.
    Sweep(WorkloadSpec),
    /// Adaptively refine a workload grid's front, streaming round events.
    Refine {
        /// The grid to refine.
        spec: WorkloadSpec,
        /// Evaluation budget (`0` = none).
        budget: usize,
        /// Staircase gap tolerance.
        gap_tol: f64,
        /// Grid-point names from a previously returned front, used to
        /// warm-start the seed.
        warm_front: Vec<String>,
    },
    /// Report the pool's cache counters and server gauges.
    Stats,
    /// Return the full telemetry registry snapshot (counters, gauges,
    /// per-phase histograms).
    Metrics,
    /// Abort an in-flight `refine` (identified by its request `id`) at its
    /// next round boundary. Issued from any connection — typically a
    /// second one, since the refining connection is busy streaming.
    Cancel {
        /// The `id` of the in-flight request to cancel (a number or
        /// string, exactly as the original request chose it).
        target: Value,
    },
    /// Liveness probe.
    Ping,
    /// Stop accepting connections and exit the serve loop.
    Shutdown,
}

impl Command {
    /// The wire verb, as telemetry labels it (`serve.request.<verb>`).
    #[must_use]
    pub fn verb(&self) -> &'static str {
        match self {
            Command::Sweep(_) => "sweep",
            Command::Refine { .. } => "refine",
            Command::Stats => "stats",
            Command::Metrics => "metrics",
            Command::Cancel { .. } => "cancel",
            Command::Ping => "ping",
            Command::Shutdown => "shutdown",
        }
    }
}

/// Parses one request line. The request `id` (echoed on every response) is
/// extracted best-effort even when the command itself is malformed, so the
/// error can still be correlated by the client.
pub fn parse_request(line: &str) -> (Option<Value>, Result<Command, String>) {
    let doc = match Value::parse(line) {
        Ok(v) => v,
        Err(e) => return (None, Err(format!("request is not valid JSON: {e}"))),
    };
    let id = doc.get("id").cloned();
    let id = match id {
        Some(Value::Num(_) | Value::Str(_) | Value::Null) | None => id,
        Some(_) => return (None, Err("`id` must be a number, string, or null".into())),
    };
    let cmd = parse_command(&doc);
    (id, cmd)
}

fn parse_command(doc: &Value) -> Result<Command, String> {
    let Some(cmd) = doc.get("cmd").and_then(Value::as_str) else {
        return Err("request needs a string `cmd` field".into());
    };
    match cmd {
        "sweep" => Ok(Command::Sweep(parse_spec(doc)?)),
        "refine" => {
            let budget = match doc.get("budget") {
                None => 0,
                Some(v) => {
                    let n = v.as_u64().ok_or("`budget` must be a whole number >= 1")?;
                    if n == 0 {
                        return Err("`budget` must be >= 1 (omit it for no budget)".into());
                    }
                    usize::try_from(n).map_err(|_| "`budget` too large")?
                }
            };
            let gap_tol = match doc.get("gap_tol") {
                None => 0.05,
                Some(v) => {
                    let t = v.as_f64().ok_or("`gap_tol` must be a number")?;
                    if !t.is_finite() || t < 0.0 {
                        return Err("`gap_tol` must be a finite number >= 0".into());
                    }
                    t
                }
            };
            let warm_front = match doc.get("warm_front") {
                None => Vec::new(),
                Some(v) => v
                    .as_arr()
                    .ok_or("`warm_front` must be an array of point names")?
                    .iter()
                    .map(|n| {
                        n.as_str()
                            .map(str::to_string)
                            .ok_or("`warm_front` entries must be strings")
                    })
                    .collect::<Result<Vec<_>, _>>()?,
            };
            Ok(Command::Refine {
                spec: parse_spec(doc)?,
                budget,
                gap_tol,
                warm_front,
            })
        }
        "stats" => Ok(Command::Stats),
        "metrics" => Ok(Command::Metrics),
        "cancel" => match doc.get("target") {
            Some(t @ (Value::Num(_) | Value::Str(_))) => Ok(Command::Cancel { target: t.clone() }),
            Some(_) => Err("`target` must be the number or string `id` of the request".into()),
            None => Err("`cancel` needs a `target` — the `id` of the in-flight request".into()),
        },
        "ping" => Ok(Command::Ping),
        "shutdown" => Ok(Command::Shutdown),
        other => Err(format!(
            "unknown cmd `{other}` (sweep | refine | stats | metrics | cancel | ping | shutdown)"
        )),
    }
}

fn parse_spec(doc: &Value) -> Result<WorkloadSpec, String> {
    let workload = doc
        .get("workload")
        .map(|v| {
            v.as_str()
                .map(str::to_string)
                .ok_or("`workload` must be a string")
        })
        .transpose()?;
    let dsl = doc
        .get("dsl")
        .map(|v| {
            v.as_str()
                .map(str::to_string)
                .ok_or("`dsl` must be a string")
        })
        .transpose()?;
    Ok(WorkloadSpec {
        workload,
        dsl,
        dsl_prefix: None,
        clocks: num_list(doc, "clocks", "clock periods")?,
        cycles: num_list(doc, "cycles", "latency budgets")?,
        pipeline: pipeline_list(doc)?,
        dim: opt_usize(doc, "dim")?,
        count: opt_usize(doc, "count")?,
        seed: match doc.get("seed") {
            None => None,
            Some(v) => Some(v.as_u64().ok_or("`seed` must be a whole number")?),
        },
        objectives: parse_objectives(doc)?,
        constraints: parse_constraints_field(doc)?,
        mode: parse_mode(doc)?,
    })
}

/// Parses the `mode` request field through the one shared definition
/// ([`PointMode`]'s `FromStr`, the same grammar as CLI `--mode`).
fn parse_mode(doc: &Value) -> Result<PointMode, String> {
    match doc.get("mode") {
        None => Ok(PointMode::Full),
        Some(v) => v
            .as_str()
            .ok_or("`mode` must be a string (full | recover | auto)")?
            .parse::<PointMode>()
            .map_err(|e| format!("`mode`: {e}")),
    }
}

/// Parses the `objectives` request field through the one shared
/// definition ([`ObjectiveSpace::multi_from_json`], whose string grammar
/// the CLI's `--objectives` also uses), accepting the axis-name array
/// (`["area","power"]`), the comma string (`"area,power"`), and the
/// multi-plane forms (`"area,latency;area,power"`,
/// `[["area","latency"],["area","power"]]`).
fn parse_objectives(doc: &Value) -> Result<Option<Vec<ObjectiveSpace>>, String> {
    ObjectiveSpace::multi_from_json(doc.get("objectives")).map_err(|e| format!("`objectives`: {e}"))
}

/// Parses the `constraints` request field through the one shared
/// definition ([`constraints_from_json`], the same grammar the CLI's
/// `--constraint` and exported documents use).
fn parse_constraints_field(doc: &Value) -> Result<Vec<Constraint>, String> {
    constraints_from_json(doc.get("constraints")).map_err(|e| format!("`constraints`: {e}"))
}

fn opt_usize(doc: &Value, key: &str) -> Result<Option<usize>, String> {
    match doc.get(key) {
        None => Ok(None),
        Some(v) => {
            let n = v
                .as_u64()
                .ok_or_else(|| format!("`{key}` must be a whole number"))?;
            usize::try_from(n)
                .map(Some)
                .map_err(|_| format!("`{key}` too large"))
        }
    }
}

fn num_list<T: TryFrom<u64>>(doc: &Value, key: &str, what: &str) -> Result<Option<Vec<T>>, String> {
    match doc.get(key) {
        None => Ok(None),
        Some(v) => v
            .as_arr()
            .ok_or_else(|| format!("`{key}` must be an array of numbers"))?
            .iter()
            .map(|n| {
                n.as_u64()
                    .and_then(|n| T::try_from(n).ok())
                    .ok_or_else(|| format!("`{key}`: bad value among the {what}"))
            })
            .collect::<Result<Vec<T>, String>>()
            .map(Some),
    }
}

fn pipeline_list(doc: &Value) -> Result<Option<Vec<Option<u32>>>, String> {
    match doc.get("pipeline") {
        None => Ok(None),
        Some(v) => v
            .as_arr()
            .ok_or("`pipeline` must be an array of IIs or nulls")?
            .iter()
            .map(|m| match m {
                Value::Null => Ok(None),
                _ => m
                    .as_u64()
                    .and_then(|n| u32::try_from(n).ok())
                    .map(Some)
                    .ok_or_else(|| "`pipeline`: entries must be null or an II".to_string()),
            })
            .collect::<Result<Vec<Option<u32>>, String>>()
            .map(Some),
    }
}

/// Appends the `{"id":...` envelope opening shared by every response.
fn open_envelope(out: &mut String, id: Option<&Value>) {
    out.push_str("{\"id\":");
    match id {
        Some(v) => v.render_into(out),
        None => out.push_str("null"),
    }
}

/// A terminal error message for `id`.
#[must_use]
pub fn render_error(id: Option<&Value>, msg: &str) -> String {
    let mut out = String::new();
    open_envelope(&mut out, id);
    out.push_str(",\"event\":\"result\",\"ok\":false,\"error\":");
    escape_into(&mut out, msg);
    out.push('}');
    out
}

/// A terminal backpressure rejection: like [`render_error`] but flagged
/// `"busy":true` so clients can distinguish "retry later" from a request
/// that is wrong and will never succeed. Emitted by the router when a
/// worker's queue cap or the connection bound is exceeded.
#[must_use]
pub fn render_busy(id: Option<&Value>, msg: &str) -> String {
    let mut out = String::new();
    open_envelope(&mut out, id);
    out.push_str(",\"event\":\"result\",\"ok\":false,\"busy\":true,\"error\":");
    escape_into(&mut out, msg);
    out.push('}');
    out
}

/// The terminal message for a successful `cancel` request: the fired
/// target's id is echoed so a client multiplexing several refines knows
/// which one will stop. (A `cancel` naming no in-flight request is a
/// plain [`render_error`].)
#[must_use]
pub fn render_cancel_result(id: Option<&Value>, target: &Value) -> String {
    let mut out = String::new();
    open_envelope(&mut out, id);
    out.push_str(",\"event\":\"result\",\"ok\":true,\"cmd\":\"cancel\",\"target\":");
    target.render_into(&mut out);
    out.push('}');
    out
}

/// Appends one round trace's fields (no surrounding braces) — the one
/// definition behind both streamed `round` events and the `refine.rounds`
/// audit block, so the two can never drift apart.
fn round_trace_fields_into(out: &mut String, t: &RoundTrace) {
    let _ = write!(
        out,
        "\"round\":{},\"new_points\":{},\"front_size\":{},\"max_gap\":{},\"pruned\":{}",
        t.round, t.new_points, t.front_size, t.max_gap, t.pruned
    );
}

/// A streamed per-round progress event.
#[must_use]
pub fn render_round(id: Option<&Value>, t: &RoundTrace) -> String {
    let mut out = String::new();
    open_envelope(&mut out, id);
    out.push_str(",\"event\":\"round\",");
    round_trace_fields_into(&mut out, t);
    out.push('}');
    out
}

/// Appends `skipped` as an array of `[name, why]` pairs.
fn skipped_into(out: &mut String, skipped: &[(String, String)]) {
    out.push('[');
    for (i, (name, why)) in skipped.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push('[');
        escape_into(out, name);
        out.push(',');
        escape_into(out, why);
        out.push(']');
    }
    out.push(']');
}

/// The terminal message for a `sweep` request. `planes` pairs each
/// requested objective space with the (constrained) front extracted in it;
/// the top-level `objectives`/`front`/`staircase` mirror the *first*
/// plane — byte-identical to the pre-multi-plane response for single-plane
/// requests — and a `planes` array with every plane's view is added when
/// more than one was requested. `constraints` records the bounds every
/// front and staircase honored.
#[must_use]
pub fn render_sweep_result(
    id: Option<&Value>,
    result: &SweepResult,
    planes: &[(ObjectiveSpace, Vec<DseRow>)],
    constraints: &[Constraint],
) -> String {
    let mut out = String::new();
    open_envelope(&mut out, id);
    let (space, front) = &planes[0];
    // One staircase extraction per plane, shared between the top-level
    // mirror and the `planes` array — staircase walks are O(n log n) over
    // the full row set, and this sits on the serve hot path.
    let staircases: Vec<String> = planes
        .iter()
        .map(|(space, _)| {
            rows_to_json_line(&tradeoff_staircase_in_constrained(
                space,
                constraints,
                &result.rows,
            ))
        })
        .collect();
    out.push_str(",\"event\":\"result\",\"ok\":true,\"cmd\":\"sweep\",\"objectives\":");
    out.push_str(&objectives_to_json(space));
    if !constraints.is_empty() {
        out.push_str(",\"constraints\":");
        out.push_str(&constraints_to_json(constraints));
    }
    out.push_str(",\"rows\":");
    out.push_str(&rows_to_json_line(&result.rows));
    out.push_str(",\"front\":");
    out.push_str(&rows_to_json_line(front));
    out.push_str(",\"staircase\":");
    out.push_str(&staircases[0]);
    if planes.len() > 1 {
        out.push_str(",\"planes\":[");
        for (i, (space, front)) in planes.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("{\"objectives\":");
            out.push_str(&objectives_to_json(space));
            out.push_str(",\"front\":");
            out.push_str(&rows_to_json_line(front));
            out.push_str(",\"staircase\":");
            out.push_str(&staircases[i]);
            out.push('}');
        }
        out.push(']');
    }
    out.push_str(",\"summary\":");
    match summarize(&result.rows) {
        Some(s) => out.push_str(&s.to_json().render()),
        None => out.push_str("null"),
    }
    out.push_str(",\"skipped\":");
    skipped_into(&mut out, &result.skipped);
    let _ = write!(
        out,
        ",\"cache_hits\":{},\"workers\":{}}}",
        result.cache_hits, result.workers
    );
    out
}

/// The terminal message for a `refine` request. The `staircase` is the
/// constrained plane projection of the space that steered the run
/// ([`RefineResult::objectives`]), which the response records next to its
/// constraints.
#[must_use]
pub fn render_refine_result(id: Option<&Value>, r: &RefineResult) -> String {
    let mut out = String::new();
    open_envelope(&mut out, id);
    out.push_str(",\"event\":\"result\",\"ok\":true,\"cmd\":\"refine\",");
    if r.cancelled {
        // Omitted entirely (not `false`) when the run converged, keeping
        // uncancelled responses byte-identical to pre-cancel servers.
        out.push_str("\"cancelled\":true,");
    }
    out.push_str("\"objectives\":");
    out.push_str(&objectives_to_json(&r.objectives));
    if !r.constraints.is_empty() {
        out.push_str(",\"constraints\":");
        out.push_str(&constraints_to_json(&r.constraints));
    }
    out.push_str(",\"rows\":");
    out.push_str(&rows_to_json_line(&r.rows));
    out.push_str(",\"staircase\":");
    out.push_str(&rows_to_json_line(&tradeoff_staircase_in_constrained(
        &r.objectives,
        &r.constraints,
        &r.rows,
    )));
    out.push_str(",\"front\":");
    out.push_str(&rows_to_json_line(&r.front));
    out.push_str(",\"skipped\":");
    skipped_into(&mut out, &r.skipped);
    let _ = write!(
        out,
        ",\"refine\":{{\"grid_cells\":{},\"evaluated\":{},\"pruned\":{},\"rounds\":[",
        r.grid_cells, r.evaluated, r.pruned
    );
    for (i, t) in r.trace.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push('{');
        round_trace_fields_into(&mut out, t);
        out.push('}');
    }
    out.push_str("]}}");
    out
}

/// A streamed per-round progress event for a **multi-plane** refinement:
/// like [`render_round`], with the per-plane gap vector in place of the
/// single `max_gap` (index-aligned with the request's planes).
#[must_use]
pub fn render_multi_round(id: Option<&Value>, t: &MultiRoundTrace) -> String {
    let mut out = String::new();
    open_envelope(&mut out, id);
    let _ = write!(
        out,
        ",\"event\":\"round\",\"round\":{},\"new_points\":{},\"front_size\":{},\"plane_gaps\":[",
        t.round, t.new_points, t.front_size
    );
    for (i, g) in t.plane_gaps.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(out, "{g}");
    }
    let _ = write!(out, "],\"pruned\":{}}}", t.pruned);
    out
}

/// The terminal message for a multi-plane `refine` request: the shared
/// `rows`/`front`, a `planes` array with each plane's `objectives`,
/// converged constrained `staircase`, and per-plane `rounds`, and a
/// `refine` audit block whose merged rounds carry `plane_gaps`. The
/// top-level `objectives`/`staircase` mirror the first plane, so
/// single-plane consumers read the response unchanged.
#[must_use]
pub fn render_refine_multi_result(id: Option<&Value>, r: &MultiRefineResult) -> String {
    let mut out = String::new();
    open_envelope(&mut out, id);
    let first = &r.planes[0];
    // As in `render_sweep_result`: one staircase extraction per plane,
    // shared between the top-level mirror and the `planes` array.
    let staircases: Vec<String> = r
        .planes
        .iter()
        .map(|p| {
            rows_to_json_line(&tradeoff_staircase_in_constrained(
                &p.objectives,
                &r.constraints,
                &r.rows,
            ))
        })
        .collect();
    out.push_str(",\"event\":\"result\",\"ok\":true,\"cmd\":\"refine\",");
    if r.cancelled {
        out.push_str("\"cancelled\":true,");
    }
    out.push_str("\"objectives\":");
    out.push_str(&objectives_to_json(&first.objectives));
    if !r.constraints.is_empty() {
        out.push_str(",\"constraints\":");
        out.push_str(&constraints_to_json(&r.constraints));
    }
    out.push_str(",\"rows\":");
    out.push_str(&rows_to_json_line(&r.rows));
    out.push_str(",\"staircase\":");
    out.push_str(&staircases[0]);
    out.push_str(",\"front\":");
    out.push_str(&rows_to_json_line(&r.front));
    out.push_str(",\"planes\":[");
    for (i, p) in r.planes.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str("{\"objectives\":");
        out.push_str(&objectives_to_json(&p.objectives));
        out.push_str(",\"staircase\":");
        out.push_str(&staircases[i]);
        out.push_str(",\"rounds\":[");
        for (j, t) in p.trace.iter().enumerate() {
            if j > 0 {
                out.push(',');
            }
            out.push('{');
            round_trace_fields_into(&mut out, t);
            out.push('}');
        }
        out.push_str("]}");
    }
    out.push_str("],\"skipped\":");
    skipped_into(&mut out, &r.skipped);
    let _ = write!(
        out,
        ",\"refine\":{{\"grid_cells\":{},\"evaluated\":{},\"pruned\":{},\"rounds\":[",
        r.grid_cells, r.evaluated, r.pruned
    );
    for (i, t) in r.trace.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(
            out,
            "{{\"round\":{},\"new_points\":{},\"front_size\":{},\"plane_gaps\":[",
            t.round, t.new_points, t.front_size
        );
        for (j, g) in t.plane_gaps.iter().enumerate() {
            if j > 0 {
                out.push(',');
            }
            let _ = write!(out, "{g}");
        }
        let _ = write!(out, "],\"pruned\":{}}}", t.pruned);
    }
    out.push_str("]}}");
    out
}

/// The terminal message for a `stats` request — the compact, stable-schema
/// summary. Every field is pulled from the same unified [`Snapshot`] the
/// `metrics` verb renders in full (`Server::metrics_snapshot`), so the two
/// surfaces cannot drift: `hits`/`coalesced`/`misses`/`evictions`/
/// `entries`/`bytes`/`capacity_bytes` are the cache counters, `requests`/
/// `uptime_ms`/`in_flight` the serve tier, `threads` the pool. Missing
/// entries render as `0` (counters/gauges the registry has not seen yet),
/// except `capacity_bytes`, whose absence means "unbounded" and renders
/// `null`.
#[must_use]
pub fn render_stats(id: Option<&Value>, snap: &Snapshot) -> String {
    let counter = |name: &str| snap.counter(name).unwrap_or(0);
    let gauge = |name: &str| snap.gauge(name).unwrap_or(0);
    let mut out = String::new();
    open_envelope(&mut out, id);
    let _ = write!(
        out,
        ",\"event\":\"result\",\"ok\":true,\"cmd\":\"stats\",\"stats\":{{\
         \"hits\":{},\"coalesced\":{},\"misses\":{},\"evictions\":{},\
         \"entries\":{},\"bytes\":{},\"capacity_bytes\":",
        counter("cache.hits"),
        counter("cache.coalesced"),
        counter("cache.misses"),
        counter("cache.evictions"),
        gauge("cache.entries"),
        gauge("cache.bytes"),
    );
    match snap.gauge("cache.capacity_bytes") {
        Some(c) => {
            let _ = write!(out, "{c}");
        }
        None => out.push_str("null"),
    }
    let _ = write!(
        out,
        ",\"requests\":{},\"uptime_ms\":{},\"in_flight\":{},\"threads\":{}}}}}",
        counter("serve.requests"),
        gauge("serve.uptime_ms"),
        gauge("serve.in_flight"),
        gauge("pool.threads"),
    );
    out
}

/// The terminal message for a `metrics` request: the full unified
/// [`Snapshot`] under a `metrics` key, in the snapshot's own JSON schema
/// (`{"counters":{...},"gauges":{...},"histograms":{...}}` — see
/// `docs/OBSERVABILITY.md`).
#[must_use]
pub fn render_metrics(id: Option<&Value>, snap: &Snapshot) -> String {
    let mut out = String::new();
    open_envelope(&mut out, id);
    let _ = write!(
        out,
        ",\"event\":\"result\",\"ok\":true,\"cmd\":\"metrics\",\"metrics\":{}}}",
        snap.render_json()
    );
    out
}

/// The terminal message for `ping`/`shutdown`.
#[must_use]
pub fn render_ok(id: Option<&Value>, cmd: &str) -> String {
    let mut out = String::new();
    open_envelope(&mut out, id);
    out.push_str(",\"event\":\"result\",\"ok\":true,\"cmd\":");
    escape_into(&mut out, cmd);
    out.push('}');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_a_full_refine_request() {
        let (id, cmd) = parse_request(
            r#"{"id":7,"cmd":"refine","workload":"idct","clocks":[2200,3000],
                "cycles":[12,16],"pipeline":[null,8],"budget":20,"gap_tol":0.1,
                "warm_front":["idct-c2200-l12"]}"#,
        );
        assert_eq!(id, Some(Value::Num(7.0)));
        let Command::Refine {
            spec,
            budget,
            gap_tol,
            warm_front,
        } = cmd.unwrap()
        else {
            panic!("expected refine");
        };
        assert_eq!(spec.workload.as_deref(), Some("idct"));
        assert_eq!(spec.clocks, Some(vec![2200, 3000]));
        assert_eq!(spec.pipeline, Some(vec![None, Some(8)]));
        assert_eq!((budget, gap_tol), (20, 0.1));
        assert_eq!(warm_front, ["idct-c2200-l12"]);
    }

    #[test]
    fn objectives_parse_as_array_or_comma_string() {
        let (_, cmd) =
            parse_request(r#"{"cmd":"sweep","workload":"idct","objectives":["area","power"]}"#);
        let Command::Sweep(spec) = cmd.unwrap() else {
            panic!("expected sweep");
        };
        assert_eq!(
            spec.objectives,
            Some(vec![ObjectiveSpace::parse("area,power").unwrap()])
        );
        let (_, cmd) =
            parse_request(r#"{"cmd":"refine","workload":"idct","objectives":"area,throughput"}"#);
        let Command::Refine { spec, .. } = cmd.unwrap() else {
            panic!("expected refine");
        };
        assert_eq!(
            spec.objectives,
            Some(vec![ObjectiveSpace::parse("area,throughput").unwrap()])
        );
        // Absent and null both mean "surface default".
        let (_, cmd) = parse_request(r#"{"cmd":"sweep","workload":"idct","objectives":null}"#);
        let Command::Sweep(spec) = cmd.unwrap() else {
            panic!("expected sweep");
        };
        assert_eq!(spec.objectives, None);
        // Bad shapes and bad names are request errors naming the field.
        for bad in [
            r#"{"cmd":"sweep","workload":"idct","objectives":7}"#,
            r#"{"cmd":"sweep","workload":"idct","objectives":["area",3]}"#,
            r#"{"cmd":"sweep","workload":"idct","objectives":["warp"]}"#,
            r#"{"cmd":"sweep","workload":"idct","objectives":"area,area"}"#,
            r#"{"cmd":"sweep","workload":"idct","objectives":"area,power;area,power"}"#,
        ] {
            let (_, cmd) = parse_request(bad);
            let err = cmd.unwrap_err();
            assert!(err.contains("objectives"), "{bad}: {err}");
        }
    }

    #[test]
    fn multi_plane_objectives_parse_on_every_accepted_shape() {
        let planes = ObjectiveSpace::parse_multi("area,latency;area,power").unwrap();
        for req in [
            r#"{"cmd":"refine","workload":"idct","objectives":"area,latency;area,power"}"#,
            r#"{"cmd":"refine","workload":"idct","objectives":["area,latency","area,power"]}"#,
            r#"{"cmd":"refine","workload":"idct","objectives":[["area","latency"],["area","power"]]}"#,
        ] {
            let (_, cmd) = parse_request(req);
            let Command::Refine { spec, .. } = cmd.unwrap() else {
                panic!("expected refine: {req}");
            };
            assert_eq!(spec.objectives, Some(planes.clone()), "{req}");
        }
    }

    #[test]
    fn constraints_parse_as_array_or_comma_string() {
        use crate::constraint::Constraint;
        let want = vec![
            Constraint::parse("area<=1500").unwrap(),
            Constraint::parse("power<=40").unwrap(),
        ];
        for req in [
            r#"{"cmd":"sweep","workload":"idct","constraints":["area<=1500","power<=40"]}"#,
            r#"{"cmd":"refine","workload":"idct","constraints":"area<=1500,power<=40"}"#,
        ] {
            let (_, cmd) = parse_request(req);
            let spec = match cmd.unwrap() {
                Command::Sweep(spec) | Command::Refine { spec, .. } => spec,
                other => panic!("unexpected {other:?}"),
            };
            assert_eq!(spec.constraints, want, "{req}");
        }
        // Absent and null mean unconstrained.
        let (_, cmd) = parse_request(r#"{"cmd":"sweep","workload":"idct","constraints":null}"#);
        let Command::Sweep(spec) = cmd.unwrap() else {
            panic!("expected sweep");
        };
        assert!(spec.constraints.is_empty());
        // Malformed constraints are request errors naming the field.
        for bad in [
            r#"{"cmd":"sweep","workload":"idct","constraints":7}"#,
            r#"{"cmd":"sweep","workload":"idct","constraints":["warp<=1"]}"#,
            r#"{"cmd":"sweep","workload":"idct","constraints":["area=1"]}"#,
            r#"{"cmd":"sweep","workload":"idct","constraints":["area<=NaN"]}"#,
            r#"{"cmd":"sweep","workload":"idct","constraints":[7]}"#,
        ] {
            let (_, cmd) = parse_request(bad);
            let err = cmd.unwrap_err();
            assert!(err.contains("constraints"), "{bad}: {err}");
        }
    }

    #[test]
    fn malformed_requests_fail_but_keep_their_id() {
        let (id, cmd) = parse_request(r#"{"id":"a1","cmd":"warp"}"#);
        assert_eq!(id, Some(Value::Str("a1".into())));
        assert!(cmd.unwrap_err().contains("unknown cmd"));
        let (id, cmd) = parse_request("{\"cmd\":");
        assert!(id.is_none());
        assert!(cmd.is_err());
        let (_, cmd) = parse_request(r#"{"cmd":"refine","budget":0}"#);
        assert!(cmd.unwrap_err().contains(">= 1"));
        let (_, cmd) = parse_request(r#"{"cmd":"refine","gap_tol":-1}"#);
        assert!(cmd.unwrap_err().contains("finite"));
    }

    #[test]
    fn responses_are_single_line_json() {
        let id = Some(Value::Num(3.0));
        let err = render_error(id.as_ref(), "no such \"workload\"");
        let parsed = Value::parse(&err).unwrap();
        assert_eq!(parsed.get("ok"), Some(&Value::Bool(false)));
        assert!(!err.contains('\n'));
        let round = render_round(
            id.as_ref(),
            &RoundTrace {
                round: 2,
                new_points: 4,
                front_size: 9,
                max_gap: 0.25,
                pruned: 1,
            },
        );
        let parsed = Value::parse(&round).unwrap();
        assert_eq!(parsed.get("event").and_then(Value::as_str), Some("round"));
        assert_eq!(parsed.get("max_gap").and_then(Value::as_f64), Some(0.25));
    }

    #[test]
    fn stats_rendering_carries_capacity_and_counters() {
        let mut snap = Snapshot::new();
        snap.push_counter("cache.hits", 5);
        snap.push_counter("cache.coalesced", 2);
        snap.push_counter("cache.misses", 9);
        snap.push_counter("cache.evictions", 1);
        snap.push_gauge("cache.entries", 8);
        snap.push_gauge("cache.bytes", 1024);
        snap.push_gauge("cache.capacity_bytes", 4096);
        snap.push_counter("serve.requests", 12);
        snap.push_gauge("serve.uptime_ms", 1500);
        snap.push_gauge("serve.in_flight", 1);
        snap.push_gauge("pool.threads", 4);
        let line = render_stats(None, &snap);
        let v = Value::parse(&line).unwrap();
        let stats = v.get("stats").unwrap();
        assert_eq!(stats.get("hits").and_then(Value::as_u64), Some(5));
        assert_eq!(
            stats.get("capacity_bytes").and_then(Value::as_u64),
            Some(4096)
        );
        assert_eq!(stats.get("requests").and_then(Value::as_u64), Some(12));
        assert_eq!(stats.get("uptime_ms").and_then(Value::as_u64), Some(1500));
        assert_eq!(stats.get("in_flight").and_then(Value::as_u64), Some(1));
        assert_eq!(stats.get("threads").and_then(Value::as_u64), Some(4));
        // An unbounded cache has no capacity gauge at all; unseen counters
        // report 0, not an absent field — the schema is stable.
        let empty = render_stats(None, &Snapshot::new());
        assert!(empty.contains("\"capacity_bytes\":null"));
        assert!(empty.contains("\"hits\":0"));
    }

    #[test]
    fn metrics_rendering_embeds_the_snapshot_verbatim() {
        let mut snap = Snapshot::new();
        snap.push_counter("serve.requests", 3);
        let line = render_metrics(Some(&Value::Num(9.0)), &snap);
        let v = Value::parse(&line).unwrap();
        assert_eq!(v.get("event").and_then(Value::as_str), Some("result"));
        assert_eq!(v.get("ok"), Some(&Value::Bool(true)));
        assert_eq!(v.get("cmd").and_then(Value::as_str), Some("metrics"));
        let m = v.get("metrics").expect("metrics payload");
        assert_eq!(
            m.get("counters")
                .and_then(|c| c.get("serve.requests"))
                .and_then(Value::as_u64),
            Some(3)
        );
    }

    #[test]
    fn every_command_reports_its_wire_verb() {
        assert_eq!(
            parse_request(r#"{"cmd":"metrics"}"#).1.unwrap().verb(),
            "metrics"
        );
        assert_eq!(parse_request(r#"{"cmd":"ping"}"#).1.unwrap().verb(), "ping");
        assert_eq!(
            parse_request(r#"{"cmd":"stats"}"#).1.unwrap().verb(),
            "stats"
        );
    }
}
