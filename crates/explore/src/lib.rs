//! # adhls-explore — parallel Pareto design-space exploration
//!
//! The paper's §VII evaluation sweeps 15 hand-picked IDCT design points
//! serially; this crate generalizes that driver into an exploration
//! *engine* in the spirit of automated space/time scaling search:
//!
//! * [`sweep`] — grid generators that expand a workload over
//!   clock × latency-budget × pipelining axes into [`DsePoint`] fleets,
//! * [`engine`] — a work-stealing parallel evaluator fanning
//!   `run_hls` calls across cores, with a memoizing result cache keyed by
//!   (design fingerprint, options fingerprint) so repeated points are free,
//! * [`pareto`] — Pareto-front extraction through pluggable
//!   [`ObjectiveSpace`]s (ordered selections of the area / latency /
//!   power / throughput axes) with dominance pruning and deterministic
//!   ordering regardless of thread interleaving,
//! * [`constraint`] — objective bounds (`area<=1500`, `power<=40`) that
//!   slice every extraction and refinement down to the feasible region,
//! * [`export`] — JSON/CSV renderers for sweeps and fronts,
//! * [`fingerprint`] — stable structural hashing of designs and options,
//! * [`pool`] — a persistent evaluator pool sharing worker threads and a
//!   budgeted cross-request cache between concurrent submitters,
//! * [`refine`](mod@refine) — adaptive Pareto-front refinement with warm
//!   starts,
//! * [`server`] — the `adhls serve` daemon: a line-delimited JSON protocol
//!   multiplexing sweep/refine requests onto one pool, with cache
//!   eviction for long-lived processes.
//!
//! The engine's contract: **parallel evaluation returns bit-identical rows
//! to serial evaluation, in input order.** Each point's result depends only
//! on that point, the library, and the options, so worker interleaving
//! cannot change any value; ordering is restored from the input index.
//!
//! # Example
//!
//! ```
//! use adhls_core::sched::HlsOptions;
//! use adhls_explore::prelude::*;
//! use adhls_reslib::tsmc90;
//! use adhls_workloads::interpolation;
//!
//! let lib = tsmc90::library();
//! let points = SweepGrid::new()
//!     .clocks_ps([1100, 1400])
//!     .cycles([3, 4])
//!     .expand("interp", |cell| {
//!         let cfg = interpolation::InterpolationConfig {
//!             cycles: cell.cycles,
//!             ..Default::default()
//!         };
//!         interpolation::build(&cfg).0
//!     })
//!     .unwrap();
//! let engine = Engine::new(&lib, HlsOptions::default());
//! let sweep = engine.evaluate(&points).unwrap();
//! let front = pareto_front(&sweep.rows);
//! assert!(!front.is_empty());
//! assert_eq!(sweep.rows, engine.evaluate_serial(&points).unwrap().rows);
//! ```

#![warn(missing_docs)]

pub mod constraint;
pub mod engine;
pub mod export;
pub mod fingerprint;
pub mod pareto;
pub mod pool;
pub mod refine;
pub mod server;
pub mod sweep;

pub use constraint::{Constraint, ConstraintOp};
pub use engine::{Engine, EngineOptions, HitMiss, SweepResult};
pub use pareto::{
    dominates, objectives, pareto_front, pareto_front_in, pareto_front_in_constrained,
    pareto_indices, pareto_indices_in, pareto_indices_in_constrained, staircase_indices,
    staircase_indices_in, staircase_indices_in_constrained, tradeoff_staircase,
    tradeoff_staircase_in, tradeoff_staircase_in_constrained, Objective, ObjectiveSpace,
    Objectives, Sense,
};
pub use pool::{EvaluatorPool, PoolOptions};
pub use refine::CancelToken;
pub use refine::{
    descend, refine, refine_multi, refine_multi_with_progress, refine_with_progress,
    warm_start_cells, DescentOptions, DescentResult, DescentRungTrace, Evaluator,
    MultiRefineResult, MultiRoundTrace, RefineOptions, RefineResult, RoundTrace, WarmStart,
};
pub use server::{CacheStats, Router, RouterOptions, Server};
pub use sweep::{SweepCell, SweepGrid};

// Re-exported so downstream code can name the point/row types without a
// direct adhls-core dependency.
pub use adhls_core::dse::{DsePoint, DseRow};

/// The most common imports in one place.
pub mod prelude {
    pub use crate::constraint::{Constraint, ConstraintOp};
    pub use crate::engine::{Engine, EngineOptions, HitMiss, SweepResult};
    pub use crate::export::{
        front_to_json, front_to_json_constrained, front_to_json_in, fronts_to_json_multi,
        refine_multi_to_json, refine_to_json, rows_to_csv, rows_to_json,
    };
    pub use crate::pareto::{
        dominates, objectives, pareto_front, pareto_front_in, pareto_front_in_constrained,
        tradeoff_staircase, tradeoff_staircase_in, tradeoff_staircase_in_constrained, Objective,
        ObjectiveSpace, Objectives, Sense,
    };
    pub use crate::pool::{EvaluatorPool, PoolOptions};
    pub use crate::refine::CancelToken;
    pub use crate::refine::{
        descend, refine, refine_multi, refine_multi_with_progress, refine_with_progress,
        warm_start_cells, DescentOptions, DescentResult, DescentRungTrace, Evaluator,
        MultiRefineResult, MultiRoundTrace, RefineOptions, RefineResult, RoundTrace, WarmStart,
    };
    pub use crate::server::{CacheStats, Router, RouterOptions, Server, WorkloadSpec};
    pub use crate::sweep::{SweepCell, SweepGrid};
    pub use adhls_core::dse::{DsePoint, DseRow};
}
