//! Stable structural fingerprints for memoization keys.
//!
//! Two designs that are structurally identical (same CFG shape, same
//! operations with the same kinds/widths/operands/birth edges) fingerprint
//! identically, so re-sweeping a grid that revisits a (design, options)
//! pair hits the [`crate::engine`] cache instead of re-running HLS. The
//! hash is FNV-1a over a canonical byte walk — stable across runs and
//! platforms, independent of allocation order or pointer identity.

use adhls_core::sched::{Flow, HlsOptions};
use adhls_ir::Design;

/// 64-bit FNV-1a accumulator.
#[derive(Debug, Clone, Copy)]
pub struct Fnv(u64);

impl Default for Fnv {
    fn default() -> Self {
        Fnv(0xCBF2_9CE4_8422_2325)
    }
}

impl Fnv {
    /// Absorbs raw bytes.
    pub fn bytes(&mut self, bytes: &[u8]) -> &mut Self {
        for &b in bytes {
            self.0 ^= u64::from(b);
            self.0 = self.0.wrapping_mul(0x0000_0100_0000_01B3);
        }
        self
    }

    /// Absorbs a `u64`.
    pub fn u64(&mut self, v: u64) -> &mut Self {
        self.bytes(&v.to_le_bytes())
    }

    /// Absorbs a string with a length prefix (prefix-collision safe).
    pub fn str(&mut self, s: &str) -> &mut Self {
        self.u64(s.len() as u64).bytes(s.as_bytes())
    }

    /// Final digest.
    #[must_use]
    pub fn digest(&self) -> u64 {
        self.0
    }
}

/// Fingerprints a design's structure: CFG nodes/edges, every live
/// operation's kind, width, signedness, operands, and birth edge.
#[must_use]
pub fn design_fingerprint(design: &Design) -> u64 {
    let mut h = Fnv::default();
    h.str(design.cfg.name());
    // CFG shape: node kinds in id order, edges as (from, to, branch, back).
    h.u64(design.cfg.len_nodes() as u64);
    for n in design.cfg.node_ids() {
        h.str(&format!("{:?}", design.cfg.node_kind(n)));
    }
    h.u64(design.cfg.len_edges() as u64);
    for e in design.cfg.edge_ids() {
        h.u64(u64::from(design.cfg.edge_from(e).0));
        h.u64(u64::from(design.cfg.edge_to(e).0));
        h.u64(match design.cfg.edge_branch(e) {
            None => 0,
            Some(false) => 1,
            Some(true) => 2,
        });
        h.u64(u64::from(design.cfg.edge_is_back(e)));
    }
    // DFG: ops in id order.
    h.u64(design.dfg.len_ids() as u64);
    for o in design.dfg.op_ids() {
        let op = design.dfg.op(o);
        h.u64(u64::from(o.0));
        h.str(op.kind().mnemonic());
        h.u64(u64::from(op.width()));
        h.u64(u64::from(op.is_signed()));
        if let Some(name) = op.name() {
            h.str(name);
        }
        h.u64(u64::from(design.dfg.birth(o).0));
        for &p in design.dfg.operands(o) {
            h.u64(u64::from(p.0));
        }
    }
    h.digest()
}

/// Fingerprints the HLS options that affect a point's result.
///
/// `HlsOptions` derives `Debug` over plain-data fields, so its debug
/// rendering is a canonical serialization; hashing it keeps this function
/// automatically in sync as options grow fields.
#[must_use]
pub fn options_fingerprint(opts: &HlsOptions) -> u64 {
    let mut h = Fnv::default();
    h.str(&format!("{opts:?}"));
    h.digest()
}

/// The options fingerprint with every knob the clock-independent prefix
/// survives normalized away: clock period, flow, and initiation interval.
/// Two option sets agreeing on this fingerprint may share every
/// [`adhls_core::PreparedDesign`] artifact.
///
/// This is the **soundness contract of the prefix cache key**, stated as a
/// function. The cache in [`crate::engine`] keys on [`design_fingerprint`]
/// alone — legitimate precisely because preparation reads *no* options
/// today — but any future options-dependent artifact must widen the key by
/// exactly this fingerprint, never by [`options_fingerprint`] (which would
/// split the prefix per clock/flow/II cell and silently defeat the
/// sharing). `tests/proptest_fingerprint.rs` pins both directions:
/// insensitive to the knobs the prefix survives, sensitive to everything
/// else.
///
/// The evaluation mode ([`adhls_core::PointMode`]) is deliberately absent
/// on both sides of this split: preparation is mode-independent, so full,
/// recover, and auto evaluations of one design share a single prefix,
/// while their *rows* never alias because the mode is folded into the
/// per-point result cache key instead (`engine::point_key`).
#[must_use]
pub fn prefix_options_fingerprint(opts: &HlsOptions) -> u64 {
    let norm = HlsOptions {
        clock_ps: 0,
        flow: Flow::SlackBased,
        pipeline_ii: None,
        ..opts.clone()
    };
    options_fingerprint(&norm)
}

#[cfg(test)]
mod tests {
    use super::*;
    use adhls_core::sched::Flow;
    use adhls_ir::builder::DesignBuilder;
    use adhls_ir::OpKind;

    fn mk(width: u16) -> Design {
        let mut b = DesignBuilder::new("fp");
        let x = b.input("x", width);
        let y = b.input("y", width);
        let m = b.binop(OpKind::Mul, x, y, width);
        b.soft_waits(1);
        b.write("z", m);
        b.finish().unwrap()
    }

    #[test]
    fn identical_structures_collide() {
        assert_eq!(design_fingerprint(&mk(8)), design_fingerprint(&mk(8)));
    }

    #[test]
    fn width_changes_the_fingerprint() {
        assert_ne!(design_fingerprint(&mk(8)), design_fingerprint(&mk(16)));
    }

    #[test]
    fn options_distinguish_clock_and_flow() {
        let base = HlsOptions::default();
        let fast = HlsOptions {
            clock_ps: 700,
            ..base.clone()
        };
        let conv = HlsOptions {
            flow: Flow::Conventional,
            ..base.clone()
        };
        assert_ne!(options_fingerprint(&base), options_fingerprint(&fast));
        assert_ne!(options_fingerprint(&base), options_fingerprint(&conv));
        assert_eq!(
            options_fingerprint(&base),
            options_fingerprint(&base.clone())
        );
    }
}
