//! Pareto-front extraction over (area, latency, power, throughput).
//!
//! A design point is on the front iff no other point *dominates* it —
//! i.e. is no worse on every objective and strictly better on at least
//! one. Area, latency, and power are minimized; throughput is maximized.
//! Extraction is a pure function of the row set, and the returned front is
//! sorted by (area, latency, name), so the result is deterministic
//! regardless of how the rows were produced (serial, parallel, cached).

use adhls_core::dse::DseRow;
use std::cmp::Ordering;

/// The four objectives of one design point.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Objectives {
    /// Slack-flow area (minimize).
    pub area: f64,
    /// Time per data item in picoseconds (minimize).
    pub latency_ps: f64,
    /// Total power of the slack implementation (minimize).
    pub power: f64,
    /// Items per microsecond (maximize).
    pub throughput: f64,
}

/// Extracts the objectives of a sweep row.
#[must_use]
pub fn objectives(row: &DseRow) -> Objectives {
    Objectives {
        area: row.a_slack,
        latency_ps: 1.0e6 / row.throughput,
        power: row.power.total,
        throughput: row.throughput,
    }
}

/// True iff `a` dominates `b`: no worse everywhere, strictly better
/// somewhere.
#[must_use]
pub fn dominates(a: &Objectives, b: &Objectives) -> bool {
    let no_worse = a.area <= b.area
        && a.latency_ps <= b.latency_ps
        && a.power <= b.power
        && a.throughput >= b.throughput;
    let strictly_better = a.area < b.area
        || a.latency_ps < b.latency_ps
        || a.power < b.power
        || a.throughput > b.throughput;
    no_worse && strictly_better
}

/// Indices of the non-dominated rows, sorted by (area, latency, name).
#[must_use]
pub fn pareto_indices(rows: &[DseRow]) -> Vec<usize> {
    let objs: Vec<Objectives> = rows.iter().map(objectives).collect();
    let mut front: Vec<usize> = (0..rows.len())
        .filter(|&i| {
            !objs
                .iter()
                .enumerate()
                .any(|(j, oj)| j != i && dominates(oj, &objs[i]))
        })
        .collect();
    front.sort_by(|&i, &j| order_key(&rows[i], &objs[i], &rows[j], &objs[j]));
    front
}

/// The non-dominated rows themselves, deterministically ordered.
#[must_use]
pub fn pareto_front(rows: &[DseRow]) -> Vec<DseRow> {
    pareto_indices(rows)
        .into_iter()
        .map(|i| rows[i].clone())
        .collect()
}

fn order_key(ra: &DseRow, oa: &Objectives, rb: &DseRow, ob: &Objectives) -> Ordering {
    oa.area
        .total_cmp(&ob.area)
        .then(oa.latency_ps.total_cmp(&ob.latency_ps))
        .then(oa.power.total_cmp(&ob.power))
        .then(ra.name.cmp(&rb.name))
}

#[cfg(test)]
mod tests {
    use super::*;
    use adhls_core::power::PowerReport;

    /// A synthetic row with the given objective values (throughput derived
    /// from latency so the two stay consistent, as in real sweeps).
    fn row(name: &str, area: f64, latency_ps: f64, power: f64) -> DseRow {
        DseRow {
            name: name.into(),
            a_conv: area * 1.1,
            a_slack: area,
            save_pct: 9.0,
            power: PowerReport {
                dynamic: power * 0.8,
                leakage: power * 0.2,
                total: power,
            },
            throughput: 1.0e6 / latency_ps,
            clock_ps: 1000,
        }
    }

    #[test]
    fn dominated_points_are_dropped() {
        let rows = vec![
            row("good", 100.0, 1000.0, 10.0),
            row("worse_everywhere", 120.0, 1200.0, 12.0),
            row("tradeoff", 80.0, 2000.0, 8.0),
        ];
        let front = pareto_front(&rows);
        let names: Vec<&str> = front.iter().map(|r| r.name.as_str()).collect();
        assert_eq!(names, ["tradeoff", "good"]);
    }

    #[test]
    fn incomparable_points_all_survive() {
        let rows = vec![
            row("a", 100.0, 3000.0, 5.0),
            row("b", 200.0, 2000.0, 10.0),
            row("c", 300.0, 1000.0, 20.0),
        ];
        assert_eq!(pareto_front(&rows).len(), 3);
    }

    #[test]
    fn duplicate_objectives_both_survive() {
        // Equal points do not dominate each other (no strict improvement).
        let rows = vec![row("x", 100.0, 1000.0, 10.0), row("y", 100.0, 1000.0, 10.0)];
        let front = pareto_front(&rows);
        assert_eq!(front.len(), 2);
        // ... and the tie is broken by name, deterministically.
        assert_eq!(front[0].name, "x");
        assert_eq!(front[1].name, "y");
    }

    #[test]
    fn front_order_ignores_input_order() {
        let a = vec![
            row("a", 100.0, 3000.0, 5.0),
            row("b", 200.0, 2000.0, 10.0),
            row("c", 300.0, 1000.0, 20.0),
        ];
        let mut b = a.clone();
        b.reverse();
        assert_eq!(pareto_front(&a), pareto_front(&b));
    }

    #[test]
    fn empty_input_empty_front() {
        assert!(pareto_front(&[]).is_empty());
    }
}
