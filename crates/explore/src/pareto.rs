//! Pareto extraction over pluggable *objective spaces*.
//!
//! The paper's §VII exploration spans a ~20× power range, a ~7× throughput
//! range and a ~1.5× area range — which tradeoff plane matters depends on
//! the question being asked. An [`ObjectiveSpace`] is an ordered selection
//! of [`Objective`] axes (each with a fixed min/max [`Sense`]); every
//! extraction in this module projects the rows through a chosen space:
//!
//! * [`pareto_indices_in`] / [`pareto_front_in`] — the non-dominated set
//!   under exactly the space's axes,
//! * [`staircase_indices_in`] / [`tradeoff_staircase_in`] — the monotone
//!   two-axis tradeoff curve in the space's *plane* (its first two axes),
//!   the generalization of the paper's Table-4 area/delay staircase,
//! * [`ObjectiveSpace::plane_gap`] — the normalized gap adaptive
//!   refinement bisects, measured in the same plane.
//!
//! A design point is on a front iff no other point *dominates* it in the
//! space — is no worse on every selected axis and strictly better on at
//! least one. Extraction is a pure function of (row set, space), and
//! fronts are sorted by the space's axes then name, so the result is
//! deterministic regardless of how the rows were produced (serial,
//! parallel, cached).
//!
//! The historical free functions remain as thin wrappers: [`pareto_front`]
//! is the front in [`ObjectiveSpace::full`] (all four axes — what the
//! pre-redesign API computed) and [`tradeoff_staircase`] is the staircase
//! in [`ObjectiveSpace::tradeoff`] (area, latency — the default space).
//!
//! Rows with *any* non-finite objective are excluded from every space,
//! even axes the space does not select: such a row carries a broken
//! evaluation (NaN compares false against everything, so it would never
//! be dominated), and keeping the filter space-independent means a row's
//! eligibility cannot change when the space does.

use crate::constraint::{feasible, Constraint};
use adhls_core::dse::DseRow;
use std::fmt;

/// The four objectives of one design point.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Objectives {
    /// Slack-flow area (minimize).
    pub area: f64,
    /// Time per data item in picoseconds (minimize).
    pub latency_ps: f64,
    /// Total power of the slack implementation (minimize).
    pub power: f64,
    /// Items per microsecond (maximize).
    pub throughput: f64,
}

/// Extracts the objectives of a sweep row.
#[must_use]
pub fn objectives(row: &DseRow) -> Objectives {
    Objectives {
        area: row.a_slack,
        latency_ps: row.latency_ps,
        power: row.power.total,
        throughput: row.throughput,
    }
}

impl Objectives {
    /// True when every objective is a finite number. Rows that fail this
    /// (e.g. a stalled point with `latency_ps == inf`, or a NaN power
    /// estimate) carry no usable tradeoff information: NaN compares false
    /// against everything, so such a row would never be dominated and would
    /// pollute every front it touched.
    #[must_use]
    pub fn is_finite(&self) -> bool {
        self.area.is_finite()
            && self.latency_ps.is_finite()
            && self.power.is_finite()
            && self.throughput.is_finite()
    }
}

/// Whether an objective axis improves downward or upward.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Sense {
    /// Smaller is better (area, latency, power).
    Minimize,
    /// Larger is better (throughput).
    Maximize,
}

/// One selectable tradeoff axis, with a fixed optimization sense.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Objective {
    /// Slack-flow area (minimize).
    Area,
    /// Time per data item in picoseconds (minimize).
    LatencyPs,
    /// Total power of the slack implementation (minimize).
    PowerTotal,
    /// Items per microsecond (maximize).
    Throughput,
}

impl Objective {
    /// Every axis, in the canonical (area, latency, power, throughput)
    /// order — the order [`ObjectiveSpace::full`] selects.
    pub const ALL: [Objective; 4] = [
        Objective::Area,
        Objective::LatencyPs,
        Objective::PowerTotal,
        Objective::Throughput,
    ];

    /// The axis's optimization sense.
    #[must_use]
    pub fn sense(self) -> Sense {
        match self {
            Objective::Throughput => Sense::Maximize,
            _ => Sense::Minimize,
        }
    }

    /// The axis's raw value in an objective vector.
    #[must_use]
    pub fn value(self, o: &Objectives) -> f64 {
        match self {
            Objective::Area => o.area,
            Objective::LatencyPs => o.latency_ps,
            Objective::PowerTotal => o.power,
            Objective::Throughput => o.throughput,
        }
    }

    /// The axis's value mapped so that *smaller is always better* —
    /// maximized axes are negated. Dominance, staircase walks, and sort
    /// keys all compare keys, which keeps the sense logic in one place.
    #[must_use]
    pub fn key(self, o: &Objectives) -> f64 {
        match self.sense() {
            Sense::Minimize => self.value(o),
            Sense::Maximize => -self.value(o),
        }
    }

    /// The wire/CLI name of the axis (`area | latency | power |
    /// throughput`).
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Objective::Area => "area",
            Objective::LatencyPs => "latency",
            Objective::PowerTotal => "power",
            Objective::Throughput => "throughput",
        }
    }

    /// Parses an axis name as accepted on every surface (CLI
    /// `--objectives`, the serve protocol's `objectives` field, exported
    /// documents). The exporters' field names are accepted as aliases so a
    /// column name can be pasted back in.
    #[must_use]
    pub fn parse(s: &str) -> Option<Objective> {
        match s.trim().to_ascii_lowercase().as_str() {
            "area" | "a_slack" => Some(Objective::Area),
            "latency" | "latency_ps" | "delay" => Some(Objective::LatencyPs),
            "power" | "power_total" => Some(Objective::PowerTotal),
            "throughput" | "throughput_per_us" => Some(Objective::Throughput),
            _ => None,
        }
    }
}

impl fmt::Display for Objective {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// An ordered, duplicate-free selection of objective axes — *the* value
/// every exploration surface (Pareto extraction, adaptive refinement, the
/// exporters, the serve protocol, the CLI) is parameterized by.
///
/// The first two axes are the space's **plane**: the projection staircase
/// gaps are measured in and adaptive refinement steers through. The
/// default space is the paper's Table-4 tradeoff plane,
/// `[Area, LatencyPs]`; [`ObjectiveSpace::full`] selects all four axes
/// (what sweep front extraction historically used).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct ObjectiveSpace {
    axes: Vec<Objective>,
}

impl Default for ObjectiveSpace {
    fn default() -> Self {
        ObjectiveSpace::tradeoff()
    }
}

impl fmt::Display for ObjectiveSpace {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, a) in self.axes.iter().enumerate() {
            if i > 0 {
                f.write_str(",")?;
            }
            f.write_str(a.name())?;
        }
        Ok(())
    }
}

impl ObjectiveSpace {
    /// A space over `axes`, in the given order.
    ///
    /// # Errors
    ///
    /// A message when `axes` is empty or repeats an axis.
    pub fn new(axes: impl IntoIterator<Item = Objective>) -> Result<ObjectiveSpace, String> {
        let axes: Vec<Objective> = axes.into_iter().collect();
        if axes.is_empty() {
            return Err("an objective space needs at least one axis".into());
        }
        for (i, a) in axes.iter().enumerate() {
            if axes[..i].contains(a) {
                return Err(format!("objective `{}` is selected twice", a.name()));
            }
        }
        Ok(ObjectiveSpace { axes })
    }

    /// The default space: the paper's (area, latency) tradeoff plane.
    #[must_use]
    pub fn tradeoff() -> ObjectiveSpace {
        ObjectiveSpace {
            axes: vec![Objective::Area, Objective::LatencyPs],
        }
    }

    /// All four axes in canonical order — the space sweep fronts are
    /// extracted in when no space is requested (the pre-redesign
    /// behavior of [`pareto_front`]).
    #[must_use]
    pub fn full() -> ObjectiveSpace {
        ObjectiveSpace {
            axes: Objective::ALL.to_vec(),
        }
    }

    /// Parses a comma-separated axis list (`"area,power"`) — the one
    /// definition behind CLI `--objectives` values and the serve
    /// protocol's `objectives` strings.
    ///
    /// ```
    /// use adhls_explore::pareto::{Objective, ObjectiveSpace};
    ///
    /// let space = ObjectiveSpace::parse("area, power").unwrap();
    /// assert_eq!(space.axes(), [Objective::Area, Objective::PowerTotal]);
    /// // Display round-trips through the same grammar.
    /// assert_eq!(space.to_string(), "area,power");
    /// assert_eq!(ObjectiveSpace::parse(&space.to_string()).unwrap(), space);
    /// // Exporter column names are accepted as aliases, so a column
    /// // header can be pasted straight back in.
    /// let aliased = ObjectiveSpace::parse("a_slack,latency_ps").unwrap();
    /// assert_eq!(aliased.axes(), [Objective::Area, Objective::LatencyPs]);
    /// // Unknown axes, duplicates, and empty lists are errors.
    /// assert!(ObjectiveSpace::parse("area,warp").is_err());
    /// assert!(ObjectiveSpace::parse("area,area").is_err());
    /// assert!(ObjectiveSpace::parse("").is_err());
    /// ```
    ///
    /// # Errors
    ///
    /// A message naming the unknown axis, an empty list, or a duplicate.
    pub fn parse(s: &str) -> Result<ObjectiveSpace, String> {
        ObjectiveSpace::parse_names(&s.split(',').collect::<Vec<_>>())
    }

    /// Parses a `;`-separated list of spaces (`"area,latency;area,power"`)
    /// — the multi-plane grammar behind CLI `--objectives` and the serve
    /// protocol's `objectives` strings. A string with no `;` is one plane.
    ///
    /// ```
    /// use adhls_explore::pareto::ObjectiveSpace;
    ///
    /// let planes = ObjectiveSpace::parse_multi("area,latency;area,power").unwrap();
    /// assert_eq!(planes.len(), 2);
    /// assert_eq!(planes[0], ObjectiveSpace::parse("area,latency").unwrap());
    /// assert_eq!(planes[1], ObjectiveSpace::parse("area,power").unwrap());
    /// ```
    ///
    /// # Errors
    ///
    /// As [`ObjectiveSpace::parse`] for the first offending plane, plus a
    /// message when the same plane appears twice (refining one plane twice
    /// in one pass is never intended).
    pub fn parse_multi(s: &str) -> Result<Vec<ObjectiveSpace>, String> {
        let planes = s
            .split(';')
            .map(ObjectiveSpace::parse)
            .collect::<Result<Vec<_>, String>>()?;
        reject_duplicate_planes(&planes)?;
        Ok(planes)
    }

    /// Parses an `objectives` JSON value as it appears on every JSON
    /// surface (the serve protocol's request field, exported front
    /// documents): an array of axis names or one comma-separated string;
    /// absent (`None`) and `null` mean "no selection". One definition, so
    /// the wire and warm-start parsers cannot drift apart.
    ///
    /// # Errors
    ///
    /// A message naming the bad shape or axis (callers prefix the field
    /// context).
    pub fn from_json(
        value: Option<&adhls_core::json::Value>,
    ) -> Result<Option<ObjectiveSpace>, String> {
        use adhls_core::json::Value;
        match value {
            None | Some(Value::Null) => Ok(None),
            Some(Value::Str(s)) => ObjectiveSpace::parse(s).map(Some),
            Some(Value::Arr(names)) => {
                let names = names
                    .iter()
                    .map(|n| n.as_str().ok_or("entries must be axis-name strings"))
                    .collect::<Result<Vec<&str>, &str>>()?;
                ObjectiveSpace::parse_names(&names).map(Some)
            }
            Some(_) => Err("must be an array of axis names".into()),
        }
    }

    /// Parses an `objectives` JSON value that may select **several
    /// planes** — the grammar of the serve protocol's `sweep`/`refine`
    /// request field. Accepted shapes:
    ///
    /// * absent / `null` — no selection (`None`),
    /// * `"area,power"` — one plane (the [`ObjectiveSpace::from_json`]
    ///   string form),
    /// * `"area,latency;area,power"` — several planes, `;`-separated,
    /// * `["area","power"]` — one plane as an array of axis names,
    /// * `[["area","latency"],["area","power"]]` or
    ///   `["area,latency","area,power"]` — several planes: an array whose
    ///   entries are themselves planes (axis-name arrays or comma
    ///   strings). An array of bare axis names stays a *single* space, so
    ///   every pre-multi-plane request keeps its meaning.
    ///
    /// # Errors
    ///
    /// A message naming the bad shape, axis, or duplicate plane (callers
    /// prefix the field context).
    pub fn multi_from_json(
        value: Option<&adhls_core::json::Value>,
    ) -> Result<Option<Vec<ObjectiveSpace>>, String> {
        use adhls_core::json::Value;
        match value {
            None | Some(Value::Null) => Ok(None),
            Some(Value::Str(s)) => ObjectiveSpace::parse_multi(s).map(Some),
            Some(Value::Arr(entries)) => {
                let is_plane_list = entries.iter().any(|e| {
                    matches!(e, Value::Arr(_)) || e.as_str().is_some_and(|s| s.contains([',', ';']))
                });
                if !is_plane_list {
                    return ObjectiveSpace::from_json(value).map(|s| s.map(|s| vec![s]));
                }
                let mut planes: Vec<ObjectiveSpace> = Vec::new();
                for e in entries {
                    match e {
                        // String entries go through the full multi-plane
                        // grammar: a stray `;` inside one entry means
                        // several planes, not an axis named "latency;area".
                        Value::Str(s) => planes.extend(ObjectiveSpace::parse_multi(s)?),
                        Value::Arr(_) => planes.push(
                            ObjectiveSpace::from_json(Some(e))?
                                .ok_or_else(|| "a plane cannot be null".to_string())?,
                        ),
                        _ => return Err("plane entries must be axis-name arrays or strings".into()),
                    }
                }
                reject_duplicate_planes(&planes)?;
                Ok(Some(planes))
            }
            Some(_) => Err("must be an array of axis names or planes".into()),
        }
    }

    /// Parses a list of axis names (the serve protocol's `objectives`
    /// array form).
    ///
    /// # Errors
    ///
    /// As [`ObjectiveSpace::parse`].
    pub fn parse_names<S: AsRef<str>>(names: &[S]) -> Result<ObjectiveSpace, String> {
        let axes = names
            .iter()
            .map(|n| {
                Objective::parse(n.as_ref()).ok_or_else(|| {
                    format!(
                        "unknown objective `{}` (area | latency | power | throughput)",
                        n.as_ref().trim()
                    )
                })
            })
            .collect::<Result<Vec<_>, String>>()?;
        ObjectiveSpace::new(axes)
    }

    /// The selected axes, in order.
    #[must_use]
    pub fn axes(&self) -> &[Objective] {
        &self.axes
    }

    /// The axes' wire names, in order (what exports and protocol responses
    /// record).
    #[must_use]
    pub fn names(&self) -> Vec<&'static str> {
        self.axes.iter().map(|a| a.name()).collect()
    }

    /// The space's tradeoff plane: its first two axes. A single-axis space
    /// degenerates to (axis, axis) — its "staircase" is just the best row
    /// on that axis.
    #[must_use]
    pub fn plane(&self) -> (Objective, Objective) {
        (self.axes[0], *self.axes.get(1).unwrap_or(&self.axes[0]))
    }

    /// True iff `a` dominates `b` *in this space*: no worse on every
    /// selected axis and strictly better on at least one. Axes outside the
    /// space carry no weight.
    ///
    /// Non-finite values make dominance vacuously false in both directions
    /// (NaN comparisons are false); [`pareto_indices_in`] therefore rejects
    /// non-finite rows up front rather than letting them survive by
    /// default.
    #[must_use]
    pub fn dominates(&self, a: &Objectives, b: &Objectives) -> bool {
        dominates_on(&self.axes, a, b)
    }

    /// Normalization ranges over the plane's bounding box of `objs`,
    /// guarded so a degenerate (single-point or axis-collapsed) box cannot
    /// divide a gap by zero.
    #[must_use]
    pub fn plane_ranges<'a>(&self, objs: impl IntoIterator<Item = &'a Objectives>) -> (f64, f64) {
        let (p, s) = self.plane();
        let mut pmin = f64::INFINITY;
        let mut pmax = f64::NEG_INFINITY;
        let mut smin = f64::INFINITY;
        let mut smax = f64::NEG_INFINITY;
        for o in objs {
            pmin = pmin.min(p.value(o));
            pmax = pmax.max(p.value(o));
            smin = smin.min(s.value(o));
            smax = smax.max(s.value(o));
        }
        let guard = |r: f64| if r > 0.0 && r.is_finite() { r } else { 1.0 };
        (guard(pmax - pmin), guard(smax - smin))
    }

    /// The normalized gap between two points in the space's plane: the
    /// Chebyshev distance of their plane projections, each axis normalized
    /// by the corresponding range (see [`ObjectiveSpace::plane_ranges`]).
    /// This is the quantity adaptive refinement drives below its
    /// tolerance.
    #[must_use]
    pub fn plane_gap(&self, a: &Objectives, b: &Objectives, ranges: (f64, f64)) -> f64 {
        let (p, s) = self.plane();
        ((p.value(a) - p.value(b)).abs() / ranges.0).max((s.value(a) - s.value(b)).abs() / ranges.1)
    }
}

/// Rejects a plane list that selects the same plane twice — refining one
/// plane twice in one pass is never intended. The one definition behind
/// [`ObjectiveSpace::parse_multi`], [`ObjectiveSpace::multi_from_json`],
/// and [`crate::refine::refine_multi`], so the surfaces cannot drift.
///
/// # Errors
///
/// A message naming the repeated plane.
pub fn reject_duplicate_planes(planes: &[ObjectiveSpace]) -> Result<(), String> {
    for (i, p) in planes.iter().enumerate() {
        if planes[..i].contains(p) {
            return Err(format!("objective plane `{p}` is selected twice"));
        }
    }
    Ok(())
}

/// The union of the planes' axes, in first-appearance order — the
/// effective axis set of a multi-plane pass, and what its constraints are
/// validated against (see [`crate::constraint::validate_constraints`]).
#[must_use]
pub fn axis_union(planes: &[ObjectiveSpace]) -> Vec<Objective> {
    let mut union: Vec<Objective> = Vec::new();
    for p in planes {
        for &a in p.axes() {
            if !union.contains(&a) {
                union.push(a);
            }
        }
    }
    union
}

/// The axis-slice dominance kernel behind [`ObjectiveSpace::dominates`]
/// and the allocation-free full-space [`dominates`] wrapper (which sits in
/// refinement's hot pruning loop).
fn dominates_on(axes: &[Objective], a: &Objectives, b: &Objectives) -> bool {
    let mut strictly_better = false;
    for axis in axes {
        match axis.key(a).partial_cmp(&axis.key(b)) {
            Some(std::cmp::Ordering::Less) => strictly_better = true,
            Some(std::cmp::Ordering::Equal) => {}
            // Worse on this axis — or incomparable (NaN), which makes
            // dominance vacuously false.
            Some(std::cmp::Ordering::Greater) | None => return false,
        }
    }
    strictly_better
}

/// True iff `a` dominates `b` in the full four-objective space —
/// equivalent to the pre-redesign dominance. Canonical form:
/// [`ObjectiveSpace::dominates`].
#[must_use]
pub fn dominates(a: &Objectives, b: &Objectives) -> bool {
    dominates_on(&Objective::ALL, a, b)
}

/// Indices of the rows non-dominated in `space`, sorted by the space's
/// axes (in order) then name.
///
/// Rows with any non-finite objective are deterministically excluded: they
/// can neither dominate nor appear on the front (a NaN/inf row would
/// otherwise always survive, since nothing compares as better than it).
#[must_use]
pub fn pareto_indices_in(space: &ObjectiveSpace, rows: &[DseRow]) -> Vec<usize> {
    pareto_indices_in_constrained(space, &[], rows)
}

/// Indices of the rows non-dominated in `space` **among the feasible
/// rows**: rows violating any [`Constraint`] are filtered out *before*
/// projection, so an infeasible row neither appears on the front nor
/// dominates anything off it. With `constraints` empty this is exactly
/// [`pareto_indices_in`].
///
/// For bounds in the improving direction
/// ([`Constraint::is_improving`]) the filter commutes with extraction —
/// the constrained front is precisely the feasible slice of the
/// unconstrained front (an infeasible point would have to be no worse on
/// its own bounded axis to dominate a feasible one, which would make it
/// feasible). Anti-improving bounds still filter first; they may surface
/// rows the unconstrained front shadowed.
#[must_use]
pub fn pareto_indices_in_constrained(
    space: &ObjectiveSpace,
    constraints: &[Constraint],
    rows: &[DseRow],
) -> Vec<usize> {
    let objs: Vec<Objectives> = rows.iter().map(objectives).collect();
    // Eligibility once per row, not once per (i, j) pair — this sits
    // under every refinement round's front extraction.
    let eligible: Vec<bool> = objs
        .iter()
        .map(|o| o.is_finite() && feasible(constraints, o))
        .collect();
    let mut front: Vec<usize> = (0..rows.len())
        .filter(|&i| {
            eligible[i]
                && !objs
                    .iter()
                    .enumerate()
                    .any(|(j, oj)| j != i && eligible[j] && space.dominates(oj, &objs[i]))
        })
        .collect();
    front.sort_by(|&i, &j| {
        space
            .axes
            .iter()
            .map(|a| a.key(&objs[i]).total_cmp(&a.key(&objs[j])))
            .fold(std::cmp::Ordering::Equal, std::cmp::Ordering::then)
            .then_with(|| rows[i].name.cmp(&rows[j].name))
    });
    front
}

/// The rows non-dominated in `space`, deterministically ordered.
#[must_use]
pub fn pareto_front_in(space: &ObjectiveSpace, rows: &[DseRow]) -> Vec<DseRow> {
    pareto_indices_in(space, rows)
        .into_iter()
        .map(|i| rows[i].clone())
        .collect()
}

/// The feasible rows non-dominated in `space`, deterministically ordered —
/// see [`pareto_indices_in_constrained`].
#[must_use]
pub fn pareto_front_in_constrained(
    space: &ObjectiveSpace,
    constraints: &[Constraint],
    rows: &[DseRow],
) -> Vec<DseRow> {
    pareto_indices_in_constrained(space, constraints, rows)
        .into_iter()
        .map(|i| rows[i].clone())
        .collect()
}

/// Indices of the non-dominated rows in [`ObjectiveSpace::full`], sorted
/// by (area, latency, power, throughput, name) — the pre-redesign
/// four-objective front. Canonical form: [`pareto_indices_in`].
#[must_use]
pub fn pareto_indices(rows: &[DseRow]) -> Vec<usize> {
    pareto_indices_in(&ObjectiveSpace::full(), rows)
}

/// The four-objective non-dominated rows themselves, deterministically
/// ordered. Canonical form: [`pareto_front_in`].
#[must_use]
pub fn pareto_front(rows: &[DseRow]) -> Vec<DseRow> {
    pareto_front_in(&ObjectiveSpace::full(), rows)
}

/// Indices of the rows non-dominated in `space`'s plane alone — the
/// generalization of the paper's Table-4 area/delay tradeoff staircase —
/// sorted by the plane's primary axis, worst-to-best on the secondary.
/// For the default space this is the (area, latency) curve: area
/// ascending, latency strictly descending. Rows with non-finite
/// objectives are excluded, like in [`pareto_indices_in`].
///
/// This is the curve adaptive refinement resolves: with every axis in
/// play most grid cells are mutually incomparable and the full front
/// approaches the whole grid, but a two-axis projection stays small and
/// monotone.
#[must_use]
pub fn staircase_indices_in(space: &ObjectiveSpace, rows: &[DseRow]) -> Vec<usize> {
    staircase_indices_in_constrained(space, &[], rows)
}

/// Indices of the staircase over the **feasible** rows only: rows
/// violating any [`Constraint`] are filtered before the plane walk, so the
/// constrained staircase is the tradeoff curve of the feasible region
/// (what constrained adaptive refinement converges on). With
/// `constraints` empty this is exactly [`staircase_indices_in`].
#[must_use]
pub fn staircase_indices_in_constrained(
    space: &ObjectiveSpace,
    constraints: &[Constraint],
    rows: &[DseRow],
) -> Vec<usize> {
    let (primary, secondary) = space.plane();
    let objs: Vec<Objectives> = rows.iter().map(objectives).collect();
    let mut idx: Vec<usize> = (0..rows.len())
        .filter(|&i| objs[i].is_finite() && feasible(constraints, &objs[i]))
        .collect();
    idx.sort_by(|&i, &j| {
        primary
            .key(&objs[i])
            .total_cmp(&primary.key(&objs[j]))
            .then(secondary.key(&objs[i]).total_cmp(&secondary.key(&objs[j])))
            .then(rows[i].name.cmp(&rows[j].name))
            .then(i.cmp(&j))
    });
    let mut out = Vec::new();
    let mut best = f64::INFINITY;
    for i in idx {
        let k = secondary.key(&objs[i]);
        if k < best {
            best = k;
            out.push(i);
        }
    }
    out
}

/// The staircase rows of `space`'s plane, primary axis improving first.
#[must_use]
pub fn tradeoff_staircase_in(space: &ObjectiveSpace, rows: &[DseRow]) -> Vec<DseRow> {
    staircase_indices_in(space, rows)
        .into_iter()
        .map(|i| rows[i].clone())
        .collect()
}

/// The staircase rows of `space`'s plane over the feasible region — see
/// [`staircase_indices_in_constrained`].
#[must_use]
pub fn tradeoff_staircase_in_constrained(
    space: &ObjectiveSpace,
    constraints: &[Constraint],
    rows: &[DseRow],
) -> Vec<DseRow> {
    staircase_indices_in_constrained(space, constraints, rows)
        .into_iter()
        .map(|i| rows[i].clone())
        .collect()
}

/// Indices of the (area, latency) staircase — the default
/// [`ObjectiveSpace::tradeoff`] plane. Canonical form:
/// [`staircase_indices_in`].
#[must_use]
pub fn staircase_indices(rows: &[DseRow]) -> Vec<usize> {
    staircase_indices_in(&ObjectiveSpace::tradeoff(), rows)
}

/// The (area, latency) staircase rows themselves, area ascending.
/// Canonical form: [`tradeoff_staircase_in`].
#[must_use]
pub fn tradeoff_staircase(rows: &[DseRow]) -> Vec<DseRow> {
    tradeoff_staircase_in(&ObjectiveSpace::tradeoff(), rows)
}

#[cfg(test)]
mod tests {
    use super::*;
    use adhls_core::power::PowerReport;

    /// A synthetic row with the given objective values (throughput derived
    /// from latency so the two stay consistent, as in real sweeps).
    fn row(name: &str, area: f64, latency_ps: f64, power: f64) -> DseRow {
        DseRow {
            name: name.into(),
            a_conv: area * 1.1,
            a_slack: area,
            save_pct: 9.0,
            power: PowerReport {
                dynamic: power * 0.8,
                leakage: power * 0.2,
                total: power,
            },
            throughput: 1.0e6 / latency_ps,
            latency_ps,
            clock_ps: 1000,
        }
    }

    #[test]
    fn dominated_points_are_dropped() {
        let rows = vec![
            row("good", 100.0, 1000.0, 10.0),
            row("worse_everywhere", 120.0, 1200.0, 12.0),
            row("tradeoff", 80.0, 2000.0, 8.0),
        ];
        let front = pareto_front(&rows);
        let names: Vec<&str> = front.iter().map(|r| r.name.as_str()).collect();
        assert_eq!(names, ["tradeoff", "good"]);
    }

    #[test]
    fn incomparable_points_all_survive() {
        let rows = vec![
            row("a", 100.0, 3000.0, 5.0),
            row("b", 200.0, 2000.0, 10.0),
            row("c", 300.0, 1000.0, 20.0),
        ];
        assert_eq!(pareto_front(&rows).len(), 3);
    }

    #[test]
    fn duplicate_objectives_both_survive() {
        // Equal points do not dominate each other (no strict improvement).
        let rows = vec![row("x", 100.0, 1000.0, 10.0), row("y", 100.0, 1000.0, 10.0)];
        let front = pareto_front(&rows);
        assert_eq!(front.len(), 2);
        // ... and the tie is broken by name, deterministically.
        assert_eq!(front[0].name, "x");
        assert_eq!(front[1].name, "y");
    }

    #[test]
    fn front_order_ignores_input_order() {
        let a = vec![
            row("a", 100.0, 3000.0, 5.0),
            row("b", 200.0, 2000.0, 10.0),
            row("c", 300.0, 1000.0, 20.0),
        ];
        let mut b = a.clone();
        b.reverse();
        assert_eq!(pareto_front(&a), pareto_front(&b));
    }

    #[test]
    fn empty_input_empty_front() {
        assert!(pareto_front(&[]).is_empty());
    }

    #[test]
    fn stalled_row_is_excluded_not_immortal() {
        // A stalled point (no items) carries latency_ps == inf; NaN-blind
        // dominance used to keep such a row on every front.
        let mut stalled = row("stalled", 50.0, 1000.0, 5.0);
        stalled.throughput = 0.0;
        stalled.latency_ps = f64::INFINITY;
        let rows = vec![stalled, row("good", 100.0, 1000.0, 10.0)];
        let names: Vec<String> = pareto_front(&rows).into_iter().map(|r| r.name).collect();
        assert_eq!(names, ["good"]);
    }

    #[test]
    fn nan_objective_rows_are_excluded() {
        let mut bad_power = row("nan_power", 50.0, 500.0, 5.0);
        bad_power.power.total = f64::NAN;
        let mut bad_area = row("nan_area", 10.0, 100.0, 1.0);
        bad_area.a_slack = f64::NAN;
        let rows = vec![bad_power, row("good", 100.0, 1000.0, 10.0), bad_area];
        let front = pareto_front(&rows);
        assert_eq!(front.len(), 1);
        assert_eq!(front[0].name, "good");
    }

    #[test]
    fn nonfinite_rows_are_excluded_even_on_unselected_axes() {
        // The finiteness filter is space-independent: a NaN power row is
        // broken evidence even when the space ignores power.
        let mut bad_power = row("nan_power", 50.0, 500.0, 5.0);
        bad_power.power.total = f64::NAN;
        let rows = vec![bad_power, row("good", 100.0, 1000.0, 10.0)];
        let front = pareto_front_in(&ObjectiveSpace::tradeoff(), &rows);
        assert_eq!(front.len(), 1);
        assert_eq!(front[0].name, "good");
    }

    #[test]
    fn all_nonfinite_input_yields_empty_front() {
        let mut a = row("a", 1.0, 1.0, 1.0);
        a.throughput = 0.0;
        a.latency_ps = f64::INFINITY;
        let mut b = row("b", 1.0, 1.0, 1.0);
        b.power.total = f64::NAN;
        assert!(pareto_front(&[a, b]).is_empty());
    }

    #[test]
    fn staircase_is_the_2d_tradeoff_curve() {
        let rows = vec![
            row("cheap_slow", 100.0, 4000.0, 30.0),
            // On the full front thanks to its low power, but 2D-dominated
            // by mid — must NOT be on the staircase.
            row("low_power", 250.0, 3500.0, 1.0),
            row("mid", 200.0, 2000.0, 10.0),
            row("big_fast", 400.0, 1000.0, 20.0),
            row("strictly_worse", 450.0, 1500.0, 25.0),
        ];
        let names: Vec<String> = tradeoff_staircase(&rows)
            .into_iter()
            .map(|r| r.name)
            .collect();
        assert_eq!(names, ["cheap_slow", "mid", "big_fast"]);
        assert!(
            pareto_front(&rows).iter().any(|r| r.name == "low_power"),
            "low_power stays on the 4-objective front"
        );
    }

    #[test]
    fn staircase_excludes_nonfinite_and_is_latency_descending() {
        let mut stalled = row("stalled", 50.0, 1000.0, 5.0);
        stalled.throughput = 0.0;
        stalled.latency_ps = f64::INFINITY;
        let rows = vec![
            stalled,
            row("a", 100.0, 3000.0, 5.0),
            row("b", 200.0, 2000.0, 10.0),
        ];
        let st = tradeoff_staircase(&rows);
        assert_eq!(st.len(), 2);
        let lats: Vec<f64> = st.iter().map(|r| objectives(r).latency_ps).collect();
        assert!(
            lats.windows(2).all(|w| w[0] > w[1]),
            "latency descends: {lats:?}"
        );
    }

    #[test]
    fn infinite_throughput_row_cannot_dominate_finite_rows() {
        // An inf-throughput row would trivially "beat" everything on that
        // axis; it must be excluded from both sides of the comparison.
        let mut warp = row("warp", 1.0, 1.0, 1.0);
        warp.throughput = f64::INFINITY;
        let rows = vec![warp, row("good", 100.0, 1000.0, 10.0)];
        let names: Vec<String> = pareto_front(&rows).into_iter().map(|r| r.name).collect();
        assert_eq!(names, ["good"]);
    }

    #[test]
    fn space_construction_rejects_empty_and_duplicates() {
        assert!(ObjectiveSpace::new([]).is_err());
        let err = ObjectiveSpace::new([Objective::Area, Objective::Area]).unwrap_err();
        assert!(err.contains("twice"), "{err}");
        assert_eq!(
            ObjectiveSpace::default(),
            ObjectiveSpace::new([Objective::Area, Objective::LatencyPs]).unwrap()
        );
    }

    #[test]
    fn space_parsing_round_trips_and_names_errors() {
        let s = ObjectiveSpace::parse("area, power").unwrap();
        assert_eq!(s.axes(), [Objective::Area, Objective::PowerTotal]);
        assert_eq!(s.to_string(), "area,power");
        assert_eq!(ObjectiveSpace::parse(&s.to_string()).unwrap(), s);
        assert_eq!(s.names(), ["area", "power"]);
        // Exporter column names are accepted as aliases.
        let aliased = ObjectiveSpace::parse("a_slack,latency_ps,throughput_per_us").unwrap();
        assert_eq!(
            aliased.axes(),
            [Objective::Area, Objective::LatencyPs, Objective::Throughput]
        );
        let err = ObjectiveSpace::parse("area,warp").unwrap_err();
        assert!(err.contains("warp"), "{err}");
        assert!(ObjectiveSpace::parse("").is_err());
        assert!(ObjectiveSpace::parse("area,area").is_err());
    }

    #[test]
    fn dominance_respects_the_selected_axes_only() {
        // b beats a on power alone.
        let a = objectives(&row("a", 100.0, 1000.0, 10.0));
        let b = objectives(&row("b", 100.0, 1000.0, 5.0));
        assert!(dominates(&b, &a), "full space sees the power win");
        let plane = ObjectiveSpace::tradeoff();
        assert!(
            !plane.dominates(&b, &a) && !plane.dominates(&a, &b),
            "the (area, latency) plane is blind to power"
        );
        let power_plane = ObjectiveSpace::parse("area,power").unwrap();
        assert!(power_plane.dominates(&b, &a));
    }

    #[test]
    fn maximized_axes_dominate_upward() {
        let slow = objectives(&row("slow", 100.0, 2000.0, 10.0));
        let fast = objectives(&row("fast", 100.0, 1000.0, 10.0));
        let tput = ObjectiveSpace::new([Objective::Area, Objective::Throughput]).unwrap();
        assert!(tput.dominates(&fast, &slow), "higher throughput wins");
        assert!(!tput.dominates(&slow, &fast));
    }

    #[test]
    fn power_plane_front_and_staircase_select_power_winners() {
        let rows = vec![
            row("cheap_hot", 100.0, 4000.0, 30.0),
            row("mid", 200.0, 2000.0, 10.0),
            row("big_cool", 400.0, 1000.0, 2.0),
            // 2D-dominated in (area, power) by mid, but the best latency.
            row("fast_hot", 300.0, 500.0, 20.0),
        ];
        let space = ObjectiveSpace::parse("area,power").unwrap();
        let names: Vec<String> = tradeoff_staircase_in(&space, &rows)
            .into_iter()
            .map(|r| r.name)
            .collect();
        assert_eq!(names, ["cheap_hot", "mid", "big_cool"]);
        let front: Vec<String> = pareto_front_in(&space, &rows)
            .into_iter()
            .map(|r| r.name)
            .collect();
        assert_eq!(front, ["cheap_hot", "mid", "big_cool"]);
        assert!(
            pareto_front(&rows).iter().any(|r| r.name == "fast_hot"),
            "fast_hot stays on the full front via latency"
        );
    }

    #[test]
    fn single_axis_space_degenerates_to_the_best_row() {
        let rows = vec![
            row("a", 100.0, 3000.0, 5.0),
            row("b", 200.0, 2000.0, 10.0),
            row("best", 50.0, 4000.0, 20.0),
        ];
        let area_only = ObjectiveSpace::new([Objective::Area]).unwrap();
        let front: Vec<String> = pareto_front_in(&area_only, &rows)
            .into_iter()
            .map(|r| r.name)
            .collect();
        assert_eq!(front, ["best"]);
        let st: Vec<String> = tradeoff_staircase_in(&area_only, &rows)
            .into_iter()
            .map(|r| r.name)
            .collect();
        assert_eq!(st, ["best"]);
    }

    #[test]
    fn plane_gap_is_normalized_chebyshev() {
        let space = ObjectiveSpace::tradeoff();
        let a = objectives(&row("a", 100.0, 4000.0, 1.0));
        let b = objectives(&row("b", 300.0, 1000.0, 1.0));
        let ranges = space.plane_ranges([&a, &b]);
        assert_eq!(ranges, (200.0, 3000.0));
        let gap = space.plane_gap(&a, &b, ranges);
        assert!((gap - 1.0).abs() < 1e-12, "endpoints span the box: {gap}");
        // Degenerate boxes guard to 1.0 instead of dividing by zero.
        let same = space.plane_ranges([&a, &a]);
        assert_eq!(same, (1.0, 1.0));
        assert_eq!(space.plane_gap(&a, &a, same), 0.0);
    }

    #[test]
    fn constrained_front_is_the_feasible_slice_for_improving_bounds() {
        use crate::constraint::Constraint;
        let rows = vec![
            row("cheap_slow", 100.0, 4000.0, 30.0),
            row("mid", 200.0, 2000.0, 10.0),
            row("big_fast", 400.0, 1000.0, 20.0),
            row("strictly_worse", 450.0, 1500.0, 25.0),
        ];
        let space = ObjectiveSpace::tradeoff();
        let cs = [Constraint::parse("area<=250").unwrap()];
        let names: Vec<String> = pareto_front_in_constrained(&space, &cs, &rows)
            .into_iter()
            .map(|r| r.name)
            .collect();
        assert_eq!(names, ["cheap_slow", "mid"]);
        // Improving bounds commute: filter-then-project == project-then-
        // filter.
        let post_hoc: Vec<DseRow> = pareto_front_in(&space, &rows)
            .into_iter()
            .filter(|r| r.a_slack <= 250.0)
            .collect();
        assert_eq!(pareto_front_in_constrained(&space, &cs, &rows), post_hoc);
        // Empty constraints are bit-identical to the unconstrained calls.
        assert_eq!(
            pareto_indices_in_constrained(&space, &[], &rows),
            pareto_indices_in(&space, &rows)
        );
        assert_eq!(
            staircase_indices_in_constrained(&space, &[], &rows),
            staircase_indices_in(&space, &rows)
        );
    }

    #[test]
    fn infeasible_rows_neither_survive_nor_dominate() {
        use crate::constraint::Constraint;
        // `shadow` dominates `survivor` in the plane, but violates the
        // latency budget — after filtering, `survivor` is on the front.
        let rows = vec![
            row("shadow", 90.0, 2500.0, 5.0),
            row("survivor", 100.0, 3000.0, 10.0),
            row("fast", 400.0, 1000.0, 20.0),
        ];
        let space = ObjectiveSpace::tradeoff();
        let cs = [Constraint::parse("latency>=2600").unwrap()];
        let names: Vec<String> = pareto_front_in_constrained(&space, &cs, &rows)
            .into_iter()
            .map(|r| r.name)
            .collect();
        assert_eq!(names, ["survivor"], "the infeasible dominator is gone");
        let st: Vec<String> = tradeoff_staircase_in_constrained(&space, &cs, &rows)
            .into_iter()
            .map(|r| r.name)
            .collect();
        assert_eq!(st, ["survivor"]);
    }

    #[test]
    fn all_infeasible_input_yields_empty_front() {
        use crate::constraint::Constraint;
        let rows = vec![row("a", 100.0, 1000.0, 10.0), row("b", 200.0, 500.0, 5.0)];
        let cs = [Constraint::parse("area<=50").unwrap()];
        assert!(pareto_front_in_constrained(&ObjectiveSpace::tradeoff(), &cs, &rows).is_empty());
        assert!(
            tradeoff_staircase_in_constrained(&ObjectiveSpace::tradeoff(), &cs, &rows).is_empty()
        );
    }

    #[test]
    fn multi_plane_parsing_accepts_strings_and_rejects_duplicates() {
        let planes = ObjectiveSpace::parse_multi("area,latency;area,power").unwrap();
        assert_eq!(planes.len(), 2);
        assert_eq!(planes[0], ObjectiveSpace::tradeoff());
        assert_eq!(planes[1], ObjectiveSpace::parse("area,power").unwrap());
        assert_eq!(
            ObjectiveSpace::parse_multi("area,power").unwrap(),
            vec![ObjectiveSpace::parse("area,power").unwrap()]
        );
        let err = ObjectiveSpace::parse_multi("area,power;area,power").unwrap_err();
        assert!(err.contains("twice"), "{err}");
        assert!(ObjectiveSpace::parse_multi("area;warp").is_err());
    }

    #[test]
    fn multi_from_json_keeps_plain_name_arrays_single_plane() {
        use adhls_core::json::Value;
        let single = Value::parse(r#"["area","power"]"#).unwrap();
        assert_eq!(
            ObjectiveSpace::multi_from_json(Some(&single)).unwrap(),
            Some(vec![ObjectiveSpace::parse("area,power").unwrap()])
        );
        let nested = Value::parse(r#"[["area","latency"],["area","power"]]"#).unwrap();
        assert_eq!(
            ObjectiveSpace::multi_from_json(Some(&nested)).unwrap(),
            Some(ObjectiveSpace::parse_multi("area,latency;area,power").unwrap())
        );
        let comma_strings = Value::parse(r#"["area,latency","area,power"]"#).unwrap();
        assert_eq!(
            ObjectiveSpace::multi_from_json(Some(&comma_strings)).unwrap(),
            Some(ObjectiveSpace::parse_multi("area,latency;area,power").unwrap())
        );
        let semis = Value::Str("area,latency;area,power".into());
        assert_eq!(
            ObjectiveSpace::multi_from_json(Some(&semis)).unwrap(),
            Some(ObjectiveSpace::parse_multi("area,latency;area,power").unwrap())
        );
        // A `;` inside an array entry means planes, not an axis typo —
        // the two documented grammars compose instead of colliding.
        let semi_entry = Value::parse(r#"["area,latency;area,power"]"#).unwrap();
        assert_eq!(
            ObjectiveSpace::multi_from_json(Some(&semi_entry)).unwrap(),
            Some(ObjectiveSpace::parse_multi("area,latency;area,power").unwrap())
        );
        let mixed = Value::parse(r#"["area,latency;area,power","area,throughput"]"#).unwrap();
        assert_eq!(
            ObjectiveSpace::multi_from_json(Some(&mixed)).unwrap(),
            Some(ObjectiveSpace::parse_multi("area,latency;area,power;area,throughput").unwrap())
        );
        assert_eq!(ObjectiveSpace::multi_from_json(None).unwrap(), None);
        assert_eq!(
            ObjectiveSpace::multi_from_json(Some(&Value::Null)).unwrap(),
            None
        );
        let dup = Value::parse(r#"[["area","power"],["area","power"]]"#).unwrap();
        assert!(ObjectiveSpace::multi_from_json(Some(&dup)).is_err());
        assert!(ObjectiveSpace::multi_from_json(Some(&Value::Num(7.0))).is_err());
    }

    #[test]
    fn wrappers_match_the_canonical_space_parameterized_calls() {
        let rows = vec![
            row("a", 100.0, 3000.0, 5.0),
            row("b", 200.0, 2000.0, 10.0),
            row("c", 300.0, 1000.0, 20.0),
            row("d", 120.0, 2900.0, 4.0),
        ];
        assert_eq!(
            pareto_indices(&rows),
            pareto_indices_in(&ObjectiveSpace::full(), &rows)
        );
        assert_eq!(
            staircase_indices(&rows),
            staircase_indices_in(&ObjectiveSpace::tradeoff(), &rows)
        );
    }
}
