//! Pareto-front extraction over (area, latency, power, throughput).
//!
//! A design point is on the front iff no other point *dominates* it —
//! i.e. is no worse on every objective and strictly better on at least
//! one. Area, latency, and power are minimized; throughput is maximized.
//! Extraction is a pure function of the row set, and the returned front is
//! sorted by (area, latency, name), so the result is deterministic
//! regardless of how the rows were produced (serial, parallel, cached).

use adhls_core::dse::DseRow;
use std::cmp::Ordering;

/// The four objectives of one design point.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Objectives {
    /// Slack-flow area (minimize).
    pub area: f64,
    /// Time per data item in picoseconds (minimize).
    pub latency_ps: f64,
    /// Total power of the slack implementation (minimize).
    pub power: f64,
    /// Items per microsecond (maximize).
    pub throughput: f64,
}

/// Extracts the objectives of a sweep row.
#[must_use]
pub fn objectives(row: &DseRow) -> Objectives {
    Objectives {
        area: row.a_slack,
        latency_ps: 1.0e6 / row.throughput,
        power: row.power.total,
        throughput: row.throughput,
    }
}

impl Objectives {
    /// True when every objective is a finite number. Rows that fail this
    /// (e.g. `throughput == 0` ⇒ `latency_ps == inf`, or a NaN power
    /// estimate) carry no usable tradeoff information: NaN compares false
    /// against everything, so such a row would never be dominated and would
    /// pollute every front it touched.
    #[must_use]
    pub fn is_finite(&self) -> bool {
        self.area.is_finite()
            && self.latency_ps.is_finite()
            && self.power.is_finite()
            && self.throughput.is_finite()
    }
}

/// True iff `a` dominates `b`: no worse everywhere, strictly better
/// somewhere.
///
/// Non-finite objectives make dominance vacuously false in both directions
/// (NaN comparisons are false); [`pareto_indices`] therefore rejects
/// non-finite rows up front rather than letting them survive by default.
#[must_use]
pub fn dominates(a: &Objectives, b: &Objectives) -> bool {
    let no_worse = a.area <= b.area
        && a.latency_ps <= b.latency_ps
        && a.power <= b.power
        && a.throughput >= b.throughput;
    let strictly_better = a.area < b.area
        || a.latency_ps < b.latency_ps
        || a.power < b.power
        || a.throughput > b.throughput;
    no_worse && strictly_better
}

/// Indices of the non-dominated rows, sorted by (area, latency, name).
///
/// Rows with any non-finite objective are deterministically excluded: they
/// can neither dominate nor appear on the front (a NaN/inf row would
/// otherwise always survive, since nothing compares as better than it).
#[must_use]
pub fn pareto_indices(rows: &[DseRow]) -> Vec<usize> {
    let objs: Vec<Objectives> = rows.iter().map(objectives).collect();
    let mut front: Vec<usize> = (0..rows.len())
        .filter(|&i| {
            objs[i].is_finite()
                && !objs
                    .iter()
                    .enumerate()
                    .any(|(j, oj)| j != i && oj.is_finite() && dominates(oj, &objs[i]))
        })
        .collect();
    front.sort_by(|&i, &j| order_key(&rows[i], &objs[i], &rows[j], &objs[j]));
    front
}

/// The non-dominated rows themselves, deterministically ordered.
#[must_use]
pub fn pareto_front(rows: &[DseRow]) -> Vec<DseRow> {
    pareto_indices(rows)
        .into_iter()
        .map(|i| rows[i].clone())
        .collect()
}

/// Indices of the rows non-dominated in the (area, latency) plane alone —
/// the paper's Table-4 area/delay tradeoff staircase — sorted by area
/// ascending (and therefore latency strictly descending). Rows with
/// non-finite objectives are excluded, like in [`pareto_indices`].
///
/// This is the curve adaptive refinement resolves: with power and
/// throughput in play most grid cells are mutually incomparable and the
/// full front approaches the whole grid, but the two-axis projection stays
/// small and monotone.
#[must_use]
pub fn staircase_indices(rows: &[DseRow]) -> Vec<usize> {
    let objs: Vec<Objectives> = rows.iter().map(objectives).collect();
    let mut idx: Vec<usize> = (0..rows.len()).filter(|&i| objs[i].is_finite()).collect();
    idx.sort_by(|&i, &j| {
        objs[i]
            .area
            .total_cmp(&objs[j].area)
            .then(objs[i].latency_ps.total_cmp(&objs[j].latency_ps))
            .then(rows[i].name.cmp(&rows[j].name))
            .then(i.cmp(&j))
    });
    let mut out = Vec::new();
    let mut best_lat = f64::INFINITY;
    for i in idx {
        if objs[i].latency_ps < best_lat {
            best_lat = objs[i].latency_ps;
            out.push(i);
        }
    }
    out
}

/// The (area, latency) staircase rows themselves, area ascending.
#[must_use]
pub fn tradeoff_staircase(rows: &[DseRow]) -> Vec<DseRow> {
    staircase_indices(rows)
        .into_iter()
        .map(|i| rows[i].clone())
        .collect()
}

fn order_key(ra: &DseRow, oa: &Objectives, rb: &DseRow, ob: &Objectives) -> Ordering {
    oa.area
        .total_cmp(&ob.area)
        .then(oa.latency_ps.total_cmp(&ob.latency_ps))
        .then(oa.power.total_cmp(&ob.power))
        .then(ra.name.cmp(&rb.name))
}

#[cfg(test)]
mod tests {
    use super::*;
    use adhls_core::power::PowerReport;

    /// A synthetic row with the given objective values (throughput derived
    /// from latency so the two stay consistent, as in real sweeps).
    fn row(name: &str, area: f64, latency_ps: f64, power: f64) -> DseRow {
        DseRow {
            name: name.into(),
            a_conv: area * 1.1,
            a_slack: area,
            save_pct: 9.0,
            power: PowerReport {
                dynamic: power * 0.8,
                leakage: power * 0.2,
                total: power,
            },
            throughput: 1.0e6 / latency_ps,
            clock_ps: 1000,
        }
    }

    #[test]
    fn dominated_points_are_dropped() {
        let rows = vec![
            row("good", 100.0, 1000.0, 10.0),
            row("worse_everywhere", 120.0, 1200.0, 12.0),
            row("tradeoff", 80.0, 2000.0, 8.0),
        ];
        let front = pareto_front(&rows);
        let names: Vec<&str> = front.iter().map(|r| r.name.as_str()).collect();
        assert_eq!(names, ["tradeoff", "good"]);
    }

    #[test]
    fn incomparable_points_all_survive() {
        let rows = vec![
            row("a", 100.0, 3000.0, 5.0),
            row("b", 200.0, 2000.0, 10.0),
            row("c", 300.0, 1000.0, 20.0),
        ];
        assert_eq!(pareto_front(&rows).len(), 3);
    }

    #[test]
    fn duplicate_objectives_both_survive() {
        // Equal points do not dominate each other (no strict improvement).
        let rows = vec![row("x", 100.0, 1000.0, 10.0), row("y", 100.0, 1000.0, 10.0)];
        let front = pareto_front(&rows);
        assert_eq!(front.len(), 2);
        // ... and the tie is broken by name, deterministically.
        assert_eq!(front[0].name, "x");
        assert_eq!(front[1].name, "y");
    }

    #[test]
    fn front_order_ignores_input_order() {
        let a = vec![
            row("a", 100.0, 3000.0, 5.0),
            row("b", 200.0, 2000.0, 10.0),
            row("c", 300.0, 1000.0, 20.0),
        ];
        let mut b = a.clone();
        b.reverse();
        assert_eq!(pareto_front(&a), pareto_front(&b));
    }

    #[test]
    fn empty_input_empty_front() {
        assert!(pareto_front(&[]).is_empty());
    }

    #[test]
    fn zero_throughput_row_is_excluded_not_immortal() {
        // throughput == 0 ⇒ latency_ps == inf; NaN-blind dominance used to
        // keep such a row on every front.
        let mut stalled = row("stalled", 50.0, 1000.0, 5.0);
        stalled.throughput = 0.0;
        let rows = vec![stalled, row("good", 100.0, 1000.0, 10.0)];
        let names: Vec<String> = pareto_front(&rows).into_iter().map(|r| r.name).collect();
        assert_eq!(names, ["good"]);
    }

    #[test]
    fn nan_objective_rows_are_excluded() {
        let mut bad_power = row("nan_power", 50.0, 500.0, 5.0);
        bad_power.power.total = f64::NAN;
        let mut bad_area = row("nan_area", 10.0, 100.0, 1.0);
        bad_area.a_slack = f64::NAN;
        let rows = vec![bad_power, row("good", 100.0, 1000.0, 10.0), bad_area];
        let front = pareto_front(&rows);
        assert_eq!(front.len(), 1);
        assert_eq!(front[0].name, "good");
    }

    #[test]
    fn all_nonfinite_input_yields_empty_front() {
        let mut a = row("a", 1.0, 1.0, 1.0);
        a.throughput = 0.0;
        let mut b = row("b", 1.0, 1.0, 1.0);
        b.power.total = f64::NAN;
        assert!(pareto_front(&[a, b]).is_empty());
    }

    #[test]
    fn staircase_is_the_2d_tradeoff_curve() {
        let rows = vec![
            row("cheap_slow", 100.0, 4000.0, 30.0),
            // On the full front thanks to its low power, but 2D-dominated
            // by mid — must NOT be on the staircase.
            row("low_power", 250.0, 3500.0, 1.0),
            row("mid", 200.0, 2000.0, 10.0),
            row("big_fast", 400.0, 1000.0, 20.0),
            row("strictly_worse", 450.0, 1500.0, 25.0),
        ];
        let names: Vec<String> = tradeoff_staircase(&rows)
            .into_iter()
            .map(|r| r.name)
            .collect();
        assert_eq!(names, ["cheap_slow", "mid", "big_fast"]);
        assert!(
            pareto_front(&rows).iter().any(|r| r.name == "low_power"),
            "low_power stays on the 4-objective front"
        );
    }

    #[test]
    fn staircase_excludes_nonfinite_and_is_latency_descending() {
        let mut stalled = row("stalled", 50.0, 1000.0, 5.0);
        stalled.throughput = 0.0;
        let rows = vec![
            stalled,
            row("a", 100.0, 3000.0, 5.0),
            row("b", 200.0, 2000.0, 10.0),
        ];
        let st = tradeoff_staircase(&rows);
        assert_eq!(st.len(), 2);
        let lats: Vec<f64> = st.iter().map(|r| objectives(r).latency_ps).collect();
        assert!(
            lats.windows(2).all(|w| w[0] > w[1]),
            "latency descends: {lats:?}"
        );
    }

    #[test]
    fn infinite_throughput_row_cannot_dominate_finite_rows() {
        // An inf-throughput row would trivially "beat" everything on that
        // axis; it must be excluded from both sides of the comparison.
        let mut warp = row("warp", 1.0, 1.0, 1.0);
        warp.throughput = f64::INFINITY;
        let rows = vec![warp, row("good", 100.0, 1000.0, 10.0)];
        let names: Vec<String> = pareto_front(&rows).into_iter().map(|r| r.name).collect();
        assert_eq!(names, ["good"]);
    }
}
