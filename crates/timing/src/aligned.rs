//! Clock-boundary alignment helpers (the paper's *aligned slack*, §V).
//!
//! Sequential slack per Definition V.3 ignores clock boundaries: an
//! operation may "start" 900 ps into a 1000 ps cycle and finish 400 ps into
//! the next, which no register-transfer implementation allows. Aligned
//! analysis forbids starting an operation when `start + delay` would cross
//! the next clock edge; operations longer than a cycle (multi-cycle
//! resources) must start exactly at a boundary.
//!
//! Times are *local*: relative to the start of the state containing the
//! operation's `early` edge; they may be negative (a value produced in an
//! earlier cycle) or exceed `T` (produced in a later cycle).

/// Floor division cycle index of local time `t` for clock period `t_clk`.
#[must_use]
pub fn cycle_of(t: i64, t_clk: i64) -> i64 {
    t.div_euclid(t_clk)
}

/// Offset of local time `t` within its cycle (`0..t_clk`).
#[must_use]
pub fn offset_of(t: i64, t_clk: i64) -> i64 {
    t.rem_euclid(t_clk)
}

/// Earliest aligned start at or after arrival `a` for an operation of
/// `delay` ps under clock `t_clk`:
///
/// * `delay == 0`: any instant is fine.
/// * `delay <= t_clk`: if the remaining cycle cannot fit the operation, push
///   to the next clock edge.
/// * `delay > t_clk` (multi-cycle): start exactly at a clock edge.
///
/// # Panics
///
/// Panics if `t_clk <= 0` or `delay < 0`.
#[must_use]
pub fn align_start_up(a: i64, delay: i64, t_clk: i64) -> i64 {
    assert!(t_clk > 0, "clock period must be positive");
    assert!(delay >= 0, "delay must be non-negative");
    if delay == 0 {
        return a;
    }
    let off = offset_of(a, t_clk);
    if delay > t_clk {
        if off == 0 {
            a
        } else {
            (cycle_of(a, t_clk) + 1) * t_clk
        }
    } else if off + delay <= t_clk {
        a
    } else {
        (cycle_of(a, t_clk) + 1) * t_clk
    }
}

/// Latest aligned start at or before `s` for an operation of `delay` ps:
/// the mirror of [`align_start_up`], used in the required-time sweep.
///
/// # Panics
///
/// Panics if `t_clk <= 0` or `delay < 0`.
#[must_use]
pub fn align_start_down(s: i64, delay: i64, t_clk: i64) -> i64 {
    assert!(t_clk > 0, "clock period must be positive");
    assert!(delay >= 0, "delay must be non-negative");
    if delay == 0 {
        return s;
    }
    let off = offset_of(s, t_clk);
    if delay > t_clk {
        // Must start at a boundary.
        if off == 0 {
            s
        } else {
            cycle_of(s, t_clk) * t_clk
        }
    } else if off + delay <= t_clk {
        s
    } else {
        // Latest start in this cycle that still fits.
        cycle_of(s, t_clk) * t_clk + (t_clk - delay)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const T: i64 = 1000;

    #[test]
    fn fits_in_cycle_untouched() {
        assert_eq!(align_start_up(100, 300, T), 100);
        assert_eq!(align_start_up(700, 300, T), 700);
        assert_eq!(align_start_down(700, 300, T), 700);
    }

    #[test]
    fn crossing_pushes_to_next_edge() {
        assert_eq!(align_start_up(750, 300, T), 1000);
        assert_eq!(align_start_up(1999, 2, T), 2000);
    }

    #[test]
    fn down_pulls_to_latest_fitting_start() {
        // Starting at 750 with delay 300 crosses; latest fitting start is 700.
        assert_eq!(align_start_down(750, 300, T), 700);
        assert_eq!(align_start_down(1050, 200, T), 1050); // fits: 1050+200 < 2000
    }

    #[test]
    fn negative_local_times() {
        // Arrived at -250 (previous cycle); op of 300 fits ending at 50?
        // offset(-250) = 750; 750+300 > 1000 -> next edge = 0.
        assert_eq!(align_start_up(-250, 300, T), 0);
        // offset(-700)=300; 300+300 <= 1000 -> unchanged.
        assert_eq!(align_start_up(-700, 300, T), -700);
    }

    #[test]
    fn multicycle_starts_at_boundary() {
        assert_eq!(align_start_up(1, 1500, T), 1000);
        assert_eq!(align_start_up(0, 1500, T), 0);
        assert_eq!(align_start_down(999, 1500, T), 0);
        assert_eq!(align_start_down(2000, 1500, T), 2000);
    }

    #[test]
    fn zero_delay_is_free() {
        assert_eq!(align_start_up(999, 0, T), 999);
        assert_eq!(align_start_down(1, 0, T), 1);
    }

    #[test]
    fn up_down_are_consistent() {
        // For any start s produced by align_start_up, aligning down from it
        // is a fixpoint.
        for a in [-1500i64, -999, -1, 0, 1, 500, 999, 1000, 2500] {
            for d in [0i64, 1, 250, 999, 1000, 1001, 2500] {
                let up = align_start_up(a, d, T);
                assert!(up >= a);
                assert_eq!(align_start_down(up, d, T), up, "a={a} d={d}");
            }
        }
    }
}
