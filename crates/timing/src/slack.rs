//! Sequential arrival/required times and slack (paper Definitions V.3–V.4,
//! algorithm of Fig. 6).
//!
//! Times are in picoseconds, *local* to each operation's `early`-edge state
//! (the `T·latency` terms in the recurrences renormalize across states):
//!
//! ```text
//! Arr(o) = max over preds p   ( Arr(p) + del(p) − T·latency(p, o) ),   0 for sources
//! Req(o) = min( T − del(o) + T·sink_w(o),
//!               min over succs s ( Req(s) − del(o) + T·latency(o, s) ) )
//! slack(o) = Req(o) − Arr(o)
//! ```
//!
//! `Arr` is the earliest possible *start* of `o`; `Req` the latest start
//! that still meets every downstream deadline and `o`'s own span end (the
//! sink term). Complexity: two sweeps over the timed DFG in topological
//! order — linear in the number of connections (the paper's improvement
//! over the Bellman-Ford formulation of prior work, kept in
//! [`crate::bellman`] for comparison).

use crate::aligned::{align_start_down, align_start_up};
use crate::tdfg::TimedDfg;
use adhls_ir::OpId;

/// Which variant of the analysis to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SlackMode {
    /// Paper Definition V.3: ignore clock boundaries.
    Plain,
    /// Aligned slack: operations may not straddle a clock edge; multi-cycle
    /// operations start at a boundary (the variant used for budgeting).
    #[default]
    Aligned,
}

/// Result of a slack computation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SlackResult {
    /// Mode used.
    pub mode: SlackMode,
    /// Clock period (ps).
    pub clock_ps: i64,
    /// Earliest start per op id (aligned when mode is `Aligned`).
    pub arr: Vec<i64>,
    /// Latest start per op id.
    pub req: Vec<i64>,
    /// `req − arr` per op id; `i64::MAX` for untimed ids.
    pub slack: Vec<i64>,
}

impl SlackResult {
    /// Slack of `o`.
    #[must_use]
    pub fn slack(&self, o: OpId) -> i64 {
        self.slack[o.0 as usize]
    }

    /// Minimum slack over timed ops (`i64::MAX` when there are none).
    #[must_use]
    pub fn min_slack(&self) -> i64 {
        self.slack.iter().copied().min().unwrap_or(i64::MAX)
    }

    /// Ops whose slack is within `margin` of the minimum — the paper's
    /// *slack binning* (§V: a 5%-of-clock margin speeds budgeting with
    /// negligible quality impact).
    #[must_use]
    pub fn critical_ops(&self, margin: i64) -> Vec<OpId> {
        let min = self.min_slack();
        if min == i64::MAX {
            return Vec::new();
        }
        self.slack
            .iter()
            .enumerate()
            .filter(|&(_, &s)| s <= min.saturating_add(margin))
            .map(|(i, _)| OpId(i as u32))
            .collect()
    }
}

/// Computes sequential (or aligned) slack for the timed DFG under the given
/// per-op delays (ps, indexed by op id) and clock period.
///
/// # Panics
///
/// Panics if `clock_ps` is zero or `delays` is shorter than the id space.
#[must_use]
pub fn compute_slack(
    tdfg: &TimedDfg,
    delays: &[i64],
    clock_ps: i64,
    mode: SlackMode,
) -> SlackResult {
    assert!(clock_ps > 0, "clock period must be positive");
    assert!(delays.len() >= tdfg.len_ids(), "delay table too short");
    let n = tdfg.len_ids();
    let t = clock_ps;
    let mut arr = vec![0i64; n];
    let mut req = vec![i64::MAX; n];

    for &o in tdfg.topo() {
        let oi = o.0 as usize;
        let mut a = if tdfg.preds(o).is_empty() {
            0
        } else {
            i64::MIN
        };
        for &(p, w) in tdfg.preds(o) {
            let pa = arr[p.0 as usize];
            let cand = pa + delays[p.0 as usize] - t * i64::from(w);
            a = a.max(cand);
        }
        if mode == SlackMode::Aligned {
            a = align_start_up(a, delays[oi], t);
        }
        arr[oi] = a;
    }

    for &o in tdfg.topo().iter().rev() {
        let oi = o.0 as usize;
        let d = delays[oi];
        // Sink term: finish by the end of the late-edge state.
        let mut r = t - d + t * i64::from(tdfg.sink_weight(o));
        for &(s, w) in tdfg.succs(o) {
            let cand = req[s.0 as usize] - d + t * i64::from(w);
            r = r.min(cand);
        }
        if mode == SlackMode::Aligned {
            r = align_start_down(r, d, t);
        }
        req[oi] = r;
    }

    let mut slack = vec![i64::MAX; n];
    for &o in tdfg.topo() {
        let oi = o.0 as usize;
        slack[oi] = req[oi] - arr[oi];
    }
    SlackResult {
        mode,
        clock_ps: t,
        arr,
        req,
        slack,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tdfg::TimedDfg;
    use adhls_ir::builder::DesignBuilder;
    use adhls_ir::cfg::{Cfg, NodeKind, StateKind};
    use adhls_ir::op::{Op, OpKind};
    use adhls_ir::{Design, Dfg};

    /// Rebuilds the paper's Fig. 4/5 resizer design (same construction as
    /// the `adhls-ir` span tests) and returns it with the interesting ops.
    fn resizer() -> (Design, Vec<(&'static str, OpId)>) {
        let mut g = Cfg::new("resizer");
        let start = g.add_node(NodeKind::Start);
        let loop_top = g.add_node(NodeKind::Join);
        let if_top = g.add_node(NodeKind::Fork);
        let s0 = g.add_node(NodeKind::State(StateKind::Hard));
        let s1 = g.add_node(NodeKind::State(StateKind::Hard));
        let if_bottom = g.add_node(NodeKind::Join);
        let s2 = g.add_node(NodeKind::State(StateKind::Hard));
        let loop_bottom = g.add_node(NodeKind::Plain);
        g.add_edge(start, loop_top);
        let e1 = g.add_edge(loop_top, if_top);
        let e2 = g.add_branch_edge(if_top, s0, true);
        let e3 = g.add_branch_edge(if_top, s1, false);
        let e4 = g.add_edge(s0, if_bottom);
        let e5 = g.add_edge(s1, if_bottom);
        let e6 = g.add_edge(if_bottom, s2);
        let e7 = g.add_edge(s2, loop_bottom);
        g.add_back_edge(loop_bottom, loop_top);
        let _ = (e2, e3);

        let mut d = Dfg::new();
        let w = 16;
        let rd_a = d.add_op(Op::new(OpKind::Read, w).named("a"), e1, &[]);
        let offset = d.add_op(Op::new(OpKind::Const(3), w), e1, &[]);
        let add = d.add_op(Op::new(OpKind::Add, w), e1, &[rd_a, offset]);
        let th = d.add_op(Op::new(OpKind::Const(100), w), e1, &[]);
        let gt = d.add_op(Op::new(OpKind::Gt, 1), e1, &[add, th]);
        g.set_cond(if_top, gt);
        let scale = d.add_op(Op::new(OpKind::Const(2), w), e4, &[]);
        let div = d.add_op(Op::new(OpKind::Div, w), e4, &[add, scale]);
        let sub = d.add_op(Op::new(OpKind::Sub, w), e4, &[div, offset]);
        let rd_b = d.add_op(Op::new(OpKind::Read, w).named("b"), e5, &[]);
        let mul = d.add_op(Op::new(OpKind::Mul, w), e5, &[add, rd_b]);
        let mux = d.add_op(Op::new(OpKind::Mux, w), e6, &[gt, sub, mul]);
        let wr = d.add_op(Op::new(OpKind::Write, w).named("out"), e7, &[mux]);
        (
            Design::new(g, d),
            vec![
                ("rd_a", rd_a),
                ("add", add),
                ("gt", gt),
                ("div", div),
                ("sub", sub),
                ("rd_b", rd_b),
                ("mul", mul),
                ("mux", mux),
                ("wr", wr),
            ],
        )
    }

    /// Paper Table 3, with concrete values satisfying `D + d < T < 2D`.
    ///
    /// The paper's walk-through sets del(I/O) = d, del(others) = D and omits
    /// the `gt` comparison from the table; we give it delay 0 so the DFG
    /// matches the published closed forms exactly.
    #[test]
    fn table3_closed_forms() {
        let (design, ops) = resizer();
        let (info, spans) = design.analyze().unwrap();
        let tdfg = TimedDfg::build(&design.dfg, &info, &spans).unwrap();
        let (d, big_d, t) = (100i64, 600i64, 1100i64);
        assert!(big_d + d < t && t < 2 * big_d, "Table 3 precondition");
        let op = |name: &str| ops.iter().find(|(n, _)| *n == name).unwrap().1;
        let mut delays = vec![0i64; design.dfg.len_ids()];
        for (name, o) in &ops {
            delays[o.0 as usize] = match *name {
                "rd_a" | "rd_b" | "wr" => d,
                "gt" => 0,
                _ => big_d,
            };
        }
        let r = compute_slack(&tdfg, &delays, t, SlackMode::Plain);

        // Row by row from paper Table 3.
        assert_eq!(r.arr[op("rd_a").0 as usize], 0);
        assert_eq!(r.req[op("rd_a").0 as usize], 2 * t - 4 * big_d - d);
        assert_eq!(r.slack(op("rd_a")), 2 * t - 4 * big_d - d);

        assert_eq!(r.arr[op("add").0 as usize], d);
        assert_eq!(r.req[op("add").0 as usize], 2 * t - 4 * big_d);
        assert_eq!(r.slack(op("add")), 2 * t - 4 * big_d - d);

        assert_eq!(r.arr[op("div").0 as usize], d + big_d);
        assert_eq!(r.req[op("div").0 as usize], 2 * t - 3 * big_d);
        assert_eq!(r.slack(op("div")), 2 * t - 4 * big_d - d);

        assert_eq!(r.arr[op("sub").0 as usize], d + 2 * big_d);
        assert_eq!(r.req[op("sub").0 as usize], 2 * t - 2 * big_d);
        assert_eq!(r.slack(op("sub")), 2 * t - 4 * big_d - d);

        assert_eq!(r.arr[op("rd_b").0 as usize], 0);
        assert_eq!(r.req[op("rd_b").0 as usize], t - 2 * big_d - d);
        assert_eq!(r.slack(op("rd_b")), t - 2 * big_d - d);

        assert_eq!(r.arr[op("mul").0 as usize], d);
        assert_eq!(r.req[op("mul").0 as usize], t - 2 * big_d);
        assert_eq!(r.slack(op("mul")), t - 2 * big_d - d);

        assert_eq!(r.arr[op("mux").0 as usize], d + 3 * big_d - t);
        assert_eq!(r.req[op("mux").0 as usize], t - big_d);
        assert_eq!(r.slack(op("mux")), 2 * t - 4 * big_d - d);

        assert_eq!(r.arr[op("wr").0 as usize], d + 4 * big_d - 2 * t);
        assert_eq!(r.req[op("wr").0 as usize], t - d);
        assert_eq!(r.slack(op("wr")), 3 * t - 4 * big_d - 2 * d);
    }

    /// Paper §V: "the important property of combinational slack, namely
    /// that all gates on the critical path have the same minimal slack, is
    /// preserved" — rd_a → add → div → sub → mux.
    #[test]
    fn critical_path_has_uniform_min_slack() {
        let (design, ops) = resizer();
        let (info, spans) = design.analyze().unwrap();
        let tdfg = TimedDfg::build(&design.dfg, &info, &spans).unwrap();
        let mut delays = vec![0i64; design.dfg.len_ids()];
        for (name, o) in &ops {
            delays[o.0 as usize] = match *name {
                "rd_a" | "rd_b" | "wr" => 100,
                "gt" => 0,
                _ => 600,
            };
        }
        let r = compute_slack(&tdfg, &delays, 1100, SlackMode::Plain);
        let crit = r.critical_ops(0);
        let names: Vec<&str> = ops
            .iter()
            .filter(|(_, o)| crit.contains(o))
            .map(|(n, _)| *n)
            .collect();
        assert_eq!(names, vec!["rd_a", "add", "div", "sub", "mux"]);
    }

    #[test]
    fn aligned_mode_pushes_crossing_ops() {
        // Two chained 600ps ops under a 1000ps clock with a 2-cycle budget:
        // plain slack lets the second start at 600 (crossing); aligned mode
        // pushes its start to 1000.
        let mut b = DesignBuilder::new("chain");
        let x = b.input("x", 8);
        let m1 = b.binop(OpKind::Mul, x, x, 8);
        b.soft_wait();
        let m2 = b.binop(OpKind::Mul, m1, m1, 8);
        b.write("y", m2);
        let d = b.finish().unwrap();
        let (info, spans) = d.analyze().unwrap();
        let tdfg = TimedDfg::build(&d.dfg, &info, &spans).unwrap();
        let mut delays = vec![0i64; d.dfg.len_ids()];
        delays[m1.0 as usize] = 600;
        delays[m2.0 as usize] = 600;
        let plain = compute_slack(&tdfg, &delays, 1000, SlackMode::Plain);
        let aligned = compute_slack(&tdfg, &delays, 1000, SlackMode::Aligned);
        assert_eq!(plain.arr[m2.0 as usize], 600);
        assert_eq!(aligned.arr[m2.0 as usize], 1000);
        assert!(aligned.slack(m2) <= plain.slack(m2));
    }

    #[test]
    fn infeasible_chain_has_negative_slack() {
        // Three chained 600ps muls forced into one 1000ps cycle.
        let mut b = DesignBuilder::new("tight");
        let x = b.read("in", 8);
        let m1 = b.binop(OpKind::Mul, x, x, 8);
        let m2 = b.binop(OpKind::Mul, m1, m1, 8);
        let m3 = b.binop(OpKind::Mul, m2, m2, 8);
        b.write("y", m3);
        let d = b.finish().unwrap();
        let (info, spans) = d.analyze().unwrap();
        let tdfg = TimedDfg::build(&d.dfg, &info, &spans).unwrap();
        let mut delays = vec![0i64; d.dfg.len_ids()];
        for o in [m1, m2, m3] {
            delays[o.0 as usize] = 600;
        }
        let r = compute_slack(&tdfg, &delays, 1000, SlackMode::Aligned);
        assert!(r.min_slack() < 0);
    }

    #[test]
    fn slack_binning_groups_near_critical() {
        let (design, ops) = resizer();
        let (info, spans) = design.analyze().unwrap();
        let tdfg = TimedDfg::build(&design.dfg, &info, &spans).unwrap();
        let mut delays = vec![0i64; design.dfg.len_ids()];
        for (name, o) in &ops {
            delays[o.0 as usize] = match *name {
                "rd_a" | "rd_b" | "wr" => 100,
                "gt" => 0,
                _ => 600,
            };
        }
        let r = compute_slack(&tdfg, &delays, 1100, SlackMode::Plain);
        // With a huge margin every timed op is "critical".
        let all = r.critical_ops(1_000_000);
        assert_eq!(all.len(), tdfg.topo().len());
        // Binning is monotone in the margin.
        assert!(r.critical_ops(0).len() <= r.critical_ops(100).len());
    }
}
