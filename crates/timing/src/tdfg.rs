//! Timed DFG construction (paper Definition V.2).
//!
//! Given DFG `D = (O, C)` with `early`/`late` mappings, the timed DFG is
//! obtained by:
//!
//! 1. dropping backward (loop-carried) edges,
//! 2. removing constant inputs (constants do not affect timing),
//! 3. adding a sink node `s(o)` per operation with `early(s(o)) = late(o)`,
//! 4. weighting every edge with its CFG latency.
//!
//! Sinks are stored implicitly as a per-operation sink weight; sources are
//! the operations with no remaining (non-constant, forward) predecessors.

use adhls_ir::cfg::CfgInfo;
use adhls_ir::span::OpSpans;
use adhls_ir::{Dfg, Error, OpId, Result};

/// The timed DFG: weighted forward adjacency over live, non-constant
/// operations, plus per-operation sink weights.
#[derive(Debug, Clone)]
pub struct TimedDfg {
    /// Id-space size of the underlying DFG (dense indexing by `OpId`).
    n_ids: usize,
    /// Whether the op participates in timing (live, non-constant).
    timed: Vec<bool>,
    /// Weighted predecessor edges `(pred, latency)`.
    preds: Vec<Vec<(OpId, u32)>>,
    /// Weighted successor edges `(succ, latency)`.
    succs: Vec<Vec<(OpId, u32)>>,
    /// Sink-edge weight per op: `latency(early(o), late(o))`.
    sink_w: Vec<u32>,
    /// Timed ops in forward topological order.
    topo: Vec<OpId>,
}

impl TimedDfg {
    /// Builds the timed DFG from a DFG and its span analysis.
    ///
    /// # Errors
    ///
    /// Returns [`Error::MalformedDfg`] when a dependency connects spans with
    /// undefined latency (cannot happen for spans produced by
    /// [`adhls_ir::span::SpanAnalysis`] on a validated design).
    pub fn build(dfg: &Dfg, info: &CfgInfo, spans: &OpSpans) -> Result<TimedDfg> {
        Self::build_with(dfg, info, |o| spans.early(o), |o| spans.late(o))
    }

    /// Like [`TimedDfg::build`] but over raw early/late mappings (e.g. the
    /// scheduler's allocation-free [`adhls_ir::span::SpanBounds`]).
    ///
    /// # Errors
    ///
    /// See [`TimedDfg::build`].
    pub fn build_with(
        dfg: &Dfg,
        info: &CfgInfo,
        early: impl Fn(OpId) -> adhls_ir::EdgeId,
        late: impl Fn(OpId) -> adhls_ir::EdgeId,
    ) -> Result<TimedDfg> {
        let n_ids = dfg.len_ids();
        let mut timed = vec![false; n_ids];
        for o in dfg.op_ids() {
            timed[o.0 as usize] = !dfg.op(o).kind().is_const();
        }
        let mut preds: Vec<Vec<(OpId, u32)>> = vec![Vec::new(); n_ids];
        let mut succs: Vec<Vec<(OpId, u32)>> = vec![Vec::new(); n_ids];
        let mut sink_w = vec![0u32; n_ids];
        for o in dfg.op_ids() {
            if !timed[o.0 as usize] {
                continue;
            }
            for p in dfg.forward_operands(o) {
                if !timed[p.0 as usize] {
                    continue; // constant input removed
                }
                let w = info.latency(early(p), early(o)).ok_or_else(|| {
                    Error::MalformedDfg(format!(
                        "dependency {p} -> {o} has undefined latency ({} to {})",
                        early(p),
                        early(o)
                    ))
                })?;
                preds[o.0 as usize].push((p, w));
                succs[p.0 as usize].push((o, w));
            }
            sink_w[o.0 as usize] = info.latency(early(o), late(o)).ok_or_else(|| {
                Error::MalformedDfg(format!("span of {o} has undefined internal latency"))
            })?;
        }
        let topo: Vec<OpId> = dfg
            .topo_order()?
            .into_iter()
            .filter(|&o| timed[o.0 as usize])
            .collect();
        Ok(TimedDfg {
            n_ids,
            timed,
            preds,
            succs,
            sink_w,
            topo,
        })
    }

    /// Recomputes every edge and sink weight in place from new `early`/`late`
    /// mappings, leaving the structure (timed set, adjacency, topological
    /// order) untouched.
    ///
    /// A timed DFG's *structure* depends only on the underlying DFG — the
    /// bounds mappings contribute nothing but weights — so when bounds move
    /// (e.g. the scheduler re-budgets after pinning an edge) the graph built
    /// by [`TimedDfg::build_with`] over the new bounds equals this one with
    /// refreshed weights. Reweighting skips the DFG traversal, the
    /// topological sort, and all adjacency allocations.
    ///
    /// # Errors
    ///
    /// Returns [`Error::MalformedDfg`] under the same conditions as
    /// [`TimedDfg::build`].
    pub fn reweight(
        &mut self,
        info: &CfgInfo,
        early: impl Fn(OpId) -> adhls_ir::EdgeId,
        late: impl Fn(OpId) -> adhls_ir::EdgeId,
    ) -> Result<()> {
        for oi in 0..self.n_ids {
            if !self.timed[oi] {
                continue;
            }
            let o = OpId(oi as u32);
            let eo = early(o);
            for (p, w) in &mut self.preds[oi] {
                *w = info.latency(early(*p), eo).ok_or_else(|| {
                    Error::MalformedDfg(format!(
                        "dependency {p} -> {o} has undefined latency ({} to {})",
                        early(*p),
                        eo
                    ))
                })?;
            }
            for (s, w) in &mut self.succs[oi] {
                *w = info.latency(eo, early(*s)).ok_or_else(|| {
                    Error::MalformedDfg(format!(
                        "dependency {o} -> {s} has undefined latency ({} to {})",
                        eo,
                        early(*s)
                    ))
                })?;
            }
            self.sink_w[oi] = info.latency(eo, late(o)).ok_or_else(|| {
                Error::MalformedDfg(format!("span of {o} has undefined internal latency"))
            })?;
        }
        Ok(())
    }

    /// Dense id-space size (index [`OpId`]s up to this).
    #[must_use]
    pub fn len_ids(&self) -> usize {
        self.n_ids
    }

    /// Whether `o` participates in timing.
    #[must_use]
    pub fn is_timed(&self, o: OpId) -> bool {
        self.timed[o.0 as usize]
    }

    /// Weighted predecessors of `o`.
    #[must_use]
    pub fn preds(&self, o: OpId) -> &[(OpId, u32)] {
        &self.preds[o.0 as usize]
    }

    /// Weighted successors of `o`.
    #[must_use]
    pub fn succs(&self, o: OpId) -> &[(OpId, u32)] {
        &self.succs[o.0 as usize]
    }

    /// Sink-edge weight of `o` (paper: `latency(early(o), late(o))`).
    #[must_use]
    pub fn sink_weight(&self, o: OpId) -> u32 {
        self.sink_w[o.0 as usize]
    }

    /// Timed operations in forward topological order.
    #[must_use]
    pub fn topo(&self) -> &[OpId] {
        &self.topo
    }

    /// Number of timed edges (the `|C|` in the paper's linear-complexity
    /// claim).
    #[must_use]
    pub fn len_edges(&self) -> usize {
        self.preds.iter().map(Vec::len).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use adhls_ir::builder::DesignBuilder;
    use adhls_ir::op::OpKind;

    #[test]
    fn constants_are_stripped() {
        let mut b = DesignBuilder::new("c");
        let x = b.input("x", 8);
        let c = b.constant(3, 8);
        let s = b.binop(OpKind::Add, x, c, 8);
        b.write("y", s);
        let d = b.finish().unwrap();
        let (info, spans) = d.analyze().unwrap();
        let t = TimedDfg::build(&d.dfg, &info, &spans).unwrap();
        assert!(!t.is_timed(c));
        assert_eq!(t.preds(s).len(), 1, "const operand must be removed");
        assert_eq!(t.preds(s)[0].0, x);
    }

    #[test]
    fn loop_carried_edges_are_dropped() {
        let mut b = DesignBuilder::new("lc");
        let zero = b.constant(0, 8);
        let lp = b.enter_loop();
        let phi = b.loop_phi(zero, 8);
        let x = b.read("in", 8);
        let s = b.binop(OpKind::Add, phi, x, 8);
        b.wait();
        b.connect_phi(phi, s);
        b.write("out", s);
        b.wait();
        b.close_loop(lp);
        let d = b.finish().unwrap();
        let (info, spans) = d.analyze().unwrap();
        let t = TimedDfg::build(&d.dfg, &info, &spans).unwrap();
        // phi has no timed preds (its init is a const; carried edge dropped).
        assert!(t.preds(phi).is_empty());
        // s's successors: the write and the (dropped) phi -> only write.
        assert_eq!(t.succs(s).len(), 1);
    }

    #[test]
    fn weights_match_span_latency() {
        let mut b = DesignBuilder::new("w");
        let x = b.read("in", 8); // fixed on entry edge
        let m = b.binop(OpKind::Mul, x, x, 8);
        b.wait();
        let w = b.write("out", m); // fixed after the wait
        let d = b.finish().unwrap();
        let (info, spans) = d.analyze().unwrap();
        let t = TimedDfg::build(&d.dfg, &info, &spans).unwrap();
        let _ = w;
        // m can't sink (hard state): early(m) on entry edge; write is one
        // state later.
        let (_, w_to_write) = t.succs(m)[0];
        assert_eq!(w_to_write, 1);
        // m's sink weight: early == late (no movement possible) -> 0.
        assert_eq!(t.sink_weight(m), 0);
    }

    #[test]
    fn reweight_matches_fresh_build_after_bounds_move() {
        // Two soft states give the mul room to move; pinning it to a later
        // edge changes edge and sink weights but never the structure.
        let mut b = DesignBuilder::new("rw");
        let x = b.input("x", 8);
        let m = b.binop(OpKind::Mul, x, x, 8);
        b.soft_waits(2);
        let a = b.binop(OpKind::Add, m, m, 16);
        b.write("y", a);
        let d = b.finish().unwrap();
        let info = d.validate().unwrap();
        let analysis = adhls_ir::span::SpanAnalysis::new(&d.dfg, &info).unwrap();
        let free = analysis.bounds_pinned(&d.dfg, &info, |_| None).unwrap();
        let pin = analysis
            .bounds_pinned(&d.dfg, &info, |o| (o == m).then(|| free.late(m)))
            .unwrap();
        let mut t =
            TimedDfg::build_with(&d.dfg, &info, |o| free.early(o), |o| free.late(o)).unwrap();
        t.reweight(&info, |o| pin.early(o), |o| pin.late(o))
            .unwrap();
        let fresh = TimedDfg::build_with(&d.dfg, &info, |o| pin.early(o), |o| pin.late(o)).unwrap();
        assert_eq!(format!("{t:?}"), format!("{fresh:?}"));
    }

    #[test]
    fn topo_covers_all_timed_ops() {
        let mut b = DesignBuilder::new("topo");
        let x = b.input("x", 8);
        let c = b.constant(1, 8);
        let a = b.binop(OpKind::Add, x, c, 8);
        let m = b.binop(OpKind::Mul, a, x, 8);
        b.write("y", m);
        let d = b.finish().unwrap();
        let (info, spans) = d.analyze().unwrap();
        let t = TimedDfg::build(&d.dfg, &info, &spans).unwrap();
        assert_eq!(t.topo().len(), 4); // x, add, mul, write (const excluded)
        assert_eq!(t.len_edges(), 4); // x->add, x->mul, add->mul, mul->write
    }
}
