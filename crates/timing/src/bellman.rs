//! Bellman-Ford slack computation — the prior-work baseline.
//!
//! Reference \[10\] of the paper (Chandrachoodan et al., *The hierarchical
//! timing pair model*) reduces behavioral timing analysis to Bellman-Ford on
//! a timing constraint graph. The paper keeps its own analysis linear by
//! exploiting the timed DFG's acyclicity (topological sweeps); Table 5 shows
//! the Bellman-Ford formulation to be ~10× slower in the scheduling loop.
//!
//! This module implements that baseline faithfully: iterate relaxation over
//! the (arbitrarily ordered) edge list until a fixpoint, without using any
//! topological information. Results are bit-identical to
//! [`crate::slack::compute_slack`] (verified by tests), only slower.

use crate::aligned::{align_start_down, align_start_up};
use crate::slack::{SlackMode, SlackResult};
use crate::tdfg::TimedDfg;
use adhls_ir::OpId;

/// Computes the same result as [`crate::slack::compute_slack`] using
/// fixpoint edge relaxation (Bellman-Ford style), for runtime comparison.
///
/// # Panics
///
/// Panics if `clock_ps` is zero or `delays` is shorter than the id space.
#[must_use]
pub fn compute_slack_bellman(
    tdfg: &TimedDfg,
    delays: &[i64],
    clock_ps: i64,
    mode: SlackMode,
) -> SlackResult {
    assert!(clock_ps > 0, "clock period must be positive");
    assert!(delays.len() >= tdfg.len_ids(), "delay table too short");
    let n = tdfg.len_ids();
    let t = clock_ps;

    // Edge list in op-id order (deliberately not topological).
    let mut edges: Vec<(OpId, OpId, u32)> = Vec::with_capacity(tdfg.len_edges());
    for i in 0..n {
        let o = OpId(i as u32);
        if !tdfg.is_timed(o) {
            continue;
        }
        for &(s, w) in tdfg.succs(o) {
            edges.push((o, s, w));
        }
    }

    // Arrival: longest-path relaxation from sources.
    let mut arr = vec![i64::MIN; n];
    for i in 0..n {
        let o = OpId(i as u32);
        if tdfg.is_timed(o) && tdfg.preds(o).is_empty() {
            let mut a = 0;
            if mode == SlackMode::Aligned {
                a = align_start_up(a, delays[i], t);
            }
            arr[i] = a;
        }
    }
    // |V| - 1 rounds max; early exit on fixpoint.
    for _round in 0..n.max(1) {
        let mut changed = false;
        for &(p, o, w) in &edges {
            let (pi, oi) = (p.0 as usize, o.0 as usize);
            if arr[pi] == i64::MIN {
                continue;
            }
            let mut cand = arr[pi] + delays[pi] - t * i64::from(w);
            if mode == SlackMode::Aligned {
                cand = align_start_up(cand, delays[oi], t);
            }
            if cand > arr[oi] {
                arr[oi] = cand;
                changed = true;
            }
        }
        if !changed {
            break;
        }
    }

    // Required: min-relaxation seeded by every op's sink bound.
    let mut req = vec![i64::MAX; n];
    for i in 0..n {
        let o = OpId(i as u32);
        if tdfg.is_timed(o) {
            let mut r = t - delays[i] + t * i64::from(tdfg.sink_weight(o));
            if mode == SlackMode::Aligned {
                r = align_start_down(r, delays[i], t);
            }
            req[i] = r;
        }
    }
    for _round in 0..n.max(1) {
        let mut changed = false;
        for &(p, o, w) in &edges {
            let (pi, oi) = (p.0 as usize, o.0 as usize);
            if req[oi] == i64::MAX {
                continue;
            }
            let mut cand = req[oi] - delays[pi] + t * i64::from(w);
            if mode == SlackMode::Aligned {
                cand = align_start_down(cand, delays[pi], t);
            }
            if cand < req[pi] {
                req[pi] = cand;
                changed = true;
            }
        }
        if !changed {
            break;
        }
    }

    let mut slack = vec![i64::MAX; n];
    for i in 0..n {
        if tdfg.is_timed(OpId(i as u32)) {
            slack[i] = req[i] - arr[i];
        }
    }
    // Untimed arr entries back to 0 for parity with compute_slack.
    for (i, a) in arr.iter_mut().enumerate() {
        if !tdfg.is_timed(OpId(i as u32)) {
            *a = 0;
        }
    }
    SlackResult {
        mode,
        clock_ps: t,
        arr,
        req,
        slack,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::slack::compute_slack;
    use crate::tdfg::TimedDfg;
    use adhls_ir::builder::DesignBuilder;
    use adhls_ir::op::OpKind;

    fn chain_design(n: usize) -> (adhls_ir::Design, Vec<adhls_ir::OpId>) {
        let mut b = DesignBuilder::new("chain");
        let x = b.input("x", 8);
        let mut ops = vec![x];
        let mut cur = x;
        for i in 0..n {
            cur = b.binop(OpKind::Mul, cur, x, 8);
            ops.push(cur);
            if i % 2 == 1 {
                b.soft_wait();
            }
        }
        b.write("y", cur);
        (b.finish().unwrap(), ops)
    }

    #[test]
    fn matches_topological_sweep_plain_and_aligned() {
        let (d, ops) = chain_design(9);
        let (info, spans) = d.analyze().unwrap();
        let tdfg = TimedDfg::build(&d.dfg, &info, &spans).unwrap();
        let mut delays = vec![0i64; d.dfg.len_ids()];
        for (i, &o) in ops.iter().enumerate() {
            delays[o.0 as usize] = 100 + 37 * i as i64;
        }
        for mode in [SlackMode::Plain, SlackMode::Aligned] {
            let fast = compute_slack(&tdfg, &delays, 900, mode);
            let slow = compute_slack_bellman(&tdfg, &delays, 900, mode);
            assert_eq!(fast.arr, slow.arr, "{mode:?} arr mismatch");
            assert_eq!(fast.req, slow.req, "{mode:?} req mismatch");
            assert_eq!(fast.slack, slow.slack, "{mode:?} slack mismatch");
        }
    }

    #[test]
    fn diamond_dependencies_match() {
        let mut b = DesignBuilder::new("diamond");
        let x = b.input("x", 16);
        let a = b.binop(OpKind::Add, x, x, 16);
        let m = b.binop(OpKind::Mul, x, x, 16);
        b.soft_wait();
        let j = b.binop(OpKind::Sub, a, m, 16);
        b.write("y", j);
        let d = b.finish().unwrap();
        let (info, spans) = d.analyze().unwrap();
        let tdfg = TimedDfg::build(&d.dfg, &info, &spans).unwrap();
        let mut delays = vec![0i64; d.dfg.len_ids()];
        delays[a.0 as usize] = 220;
        delays[m.0 as usize] = 610;
        delays[j.0 as usize] = 400;
        for mode in [SlackMode::Plain, SlackMode::Aligned] {
            let fast = compute_slack(&tdfg, &delays, 1000, mode);
            let slow = compute_slack_bellman(&tdfg, &delays, 1000, mode);
            assert_eq!(fast.slack, slow.slack);
        }
    }
}
