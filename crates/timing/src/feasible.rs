//! Design feasibility pre-check (paper §VI, Proposition 1).
//!
//! *If every operation has positive aligned slack under a one-to-one
//! (dedicated-resource) binding, then a schedule exists in which every
//! resource has positive combinational slack.* Conversely, if budgeting
//! leaves negative aligned slack, no schedule meets timing — resource
//! sharing only ever worsens timing.
//!
//! This gives the scheduler an `O(|C|)` go/no-go test before any expensive
//! scheduling work.

use crate::slack::SlackResult;
use adhls_ir::OpId;

/// Outcome of the Proposition 1 check.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Feasibility {
    /// True when every timed operation has non-negative aligned slack with
    /// dedicated resources.
    pub feasible: bool,
    /// The minimum aligned slack observed.
    pub min_slack: i64,
    /// Ops with negative slack (empty when feasible) — the witnesses the
    /// relaxation expert should target.
    pub violations: Vec<OpId>,
}

/// Runs the check on a slack result (which should come from aligned-mode
/// analysis with each op at its *fastest* feasible delay — see
/// [`crate::budget`](mod@crate::budget)).
#[must_use]
pub fn check(slack: &SlackResult) -> Feasibility {
    let min_slack = slack.min_slack();
    let violations: Vec<OpId> = slack
        .slack
        .iter()
        .enumerate()
        .filter(|&(_, &s)| s != i64::MAX && s < 0)
        .map(|(i, _)| OpId(i as u32))
        .collect();
    Feasibility {
        feasible: violations.is_empty(),
        min_slack,
        violations,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::slack::{compute_slack, SlackMode};
    use crate::tdfg::TimedDfg;
    use adhls_ir::builder::DesignBuilder;
    use adhls_ir::op::OpKind;

    #[test]
    fn feasible_when_ops_fit() {
        let mut b = DesignBuilder::new("ok");
        let x = b.input("x", 8);
        let m = b.binop(OpKind::Mul, x, x, 8);
        b.write("y", m);
        let d = b.finish().unwrap();
        let (info, spans) = d.analyze().unwrap();
        let tdfg = TimedDfg::build(&d.dfg, &info, &spans).unwrap();
        let mut delays = vec![0i64; d.dfg.len_ids()];
        delays[m.0 as usize] = 430;
        let r = compute_slack(&tdfg, &delays, 1100, SlackMode::Aligned);
        let f = check(&r);
        assert!(f.feasible);
        assert!(f.violations.is_empty());
    }

    #[test]
    fn infeasible_reports_witnesses() {
        let mut b = DesignBuilder::new("bad");
        let x = b.read("in", 8);
        let m1 = b.binop(OpKind::Mul, x, x, 8);
        let m2 = b.binop(OpKind::Mul, m1, m1, 8);
        let m3 = b.binop(OpKind::Mul, m2, m2, 8);
        b.write("y", m3);
        let d = b.finish().unwrap();
        let (info, spans) = d.analyze().unwrap();
        let tdfg = TimedDfg::build(&d.dfg, &info, &spans).unwrap();
        let mut delays = vec![0i64; d.dfg.len_ids()];
        for o in [m1, m2, m3] {
            delays[o.0 as usize] = 600;
        }
        let r = compute_slack(&tdfg, &delays, 1000, SlackMode::Aligned);
        let f = check(&r);
        assert!(!f.feasible);
        assert!(f.min_slack < 0);
        assert!(!f.violations.is_empty());
    }
}
