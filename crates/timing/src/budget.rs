//! Slack budgeting (paper §V, algorithm of Fig. 7).
//!
//! Budgeting finds, before scheduling, "the (heuristically) best resource
//! for every operation": starting from the **slowest** library grades, it
//! first repairs negative aligned slack by *upgrading* critical operations
//! (cheapest area increase per picosecond gained), then spends the
//! remaining positive slack by *downgrading* operations to cheaper grades
//! (largest area saving whose delay increase fits the operation's slack —
//! the multi-state generalization of the zero-slack algorithm \[14\]).
//!
//! Slack *binning* (treat slacks within a margin, default 5% of the clock,
//! as equal) bounds the number of distinct moves, giving the paper's
//! `O(C·N)` complexity claim.
//!
//! The budgeting loop is generic over the slack engine so the Bellman-Ford
//! baseline of Table 5 can be swapped in ([`SlackEngine::BellmanFord`]).

use crate::bellman::compute_slack_bellman;
use crate::slack::{compute_slack, SlackMode, SlackResult};
use crate::tdfg::TimedDfg;
use adhls_ir::{Dfg, Error, OpId, Result};
use adhls_reslib::library::op_resource_width;
use adhls_reslib::{Candidate, Library};

/// Which slack computation the budgeting loop uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SlackEngine {
    /// Linear topological sweeps (the paper's contribution).
    #[default]
    Topological,
    /// Fixpoint edge relaxation (prior work \[10\]; Table 5 baseline).
    BellmanFord,
}

/// Options for [`budget`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BudgetOptions {
    /// Slack-binning margin as a fraction of the clock period (paper: 5%).
    pub margin_frac: f64,
    /// Slack variant (aligned by default, per the paper).
    pub mode: SlackMode,
    /// Slack engine.
    pub engine: SlackEngine,
    /// Start from the fastest grades instead of the slowest (for
    /// experiments; the paper starts slowest).
    pub start_fastest: bool,
    /// Extra delay added to every resource-backed candidate — the
    /// scheduler's steering-mux/sharing overhead, so budget plans remain
    /// schedulable (the paper: "our actual implementation estimates
    /// them").
    pub overhead_ps: u64,
}

impl Default for BudgetOptions {
    fn default() -> Self {
        BudgetOptions {
            margin_frac: 0.05,
            mode: SlackMode::Aligned,
            engine: SlackEngine::Topological,
            start_fastest: false,
            overhead_ps: 0,
        }
    }
}

/// Delay alternatives of one operation: either a library grade curve or a
/// fixed intrinsic delay (I/O, φs, constants).
#[derive(Debug, Clone, PartialEq)]
pub struct OpChoice {
    /// Pareto candidates, fastest first (empty for fixed-delay ops).
    pub candidates: Vec<Candidate>,
    /// Intrinsic delay for ops without resource candidates.
    pub fixed_ps: Option<u64>,
}

/// Builds the per-operation delay alternatives from a library.
///
/// A shift by a **constant** amount is pure wiring in hardware — it gets a
/// fixed zero delay and no resource instead of a barrel shifter.
///
/// # Errors
///
/// Returns [`Error::MalformedDfg`] if a resource-backed operation has no
/// library candidates at its width.
pub fn op_choices(dfg: &Dfg, lib: &Library) -> Result<Vec<OpChoice>> {
    let mut out = vec![
        OpChoice {
            candidates: Vec::new(),
            fixed_ps: Some(0)
        };
        dfg.len_ids()
    ];
    for o in dfg.op_ids() {
        let kind = dfg.op(o).kind();
        let const_shift = matches!(kind, adhls_ir::OpKind::Shl | adhls_ir::OpKind::Shr)
            && dfg
                .operands(o)
                .get(1)
                .is_some_and(|&p| dfg.op(p).kind().is_const());
        let choice = if const_shift {
            OpChoice {
                candidates: Vec::new(),
                fixed_ps: Some(0),
            }
        } else if let Some(f) = lib.fixed_delay_ps(kind) {
            OpChoice {
                candidates: Vec::new(),
                fixed_ps: Some(f),
            }
        } else {
            let w = op_resource_width(dfg, o);
            let candidates = lib.candidates(kind, w);
            if candidates.is_empty() {
                return Err(Error::MalformedDfg(format!(
                    "no library candidates for {o} ({kind} at width {w})"
                )));
            }
            OpChoice {
                candidates,
                fixed_ps: None,
            }
        };
        out[o.0 as usize] = choice;
    }
    Ok(out)
}

/// Result of slack budgeting: a grade per operation plus the final slack
/// distribution.
#[derive(Debug, Clone)]
pub struct BudgetResult {
    /// Chosen candidate index per op id (None for fixed-delay ops).
    pub choice_idx: Vec<Option<usize>>,
    /// Chosen candidate per op id (None for fixed-delay ops).
    pub chosen: Vec<Option<Candidate>>,
    /// Effective delay per op id (ps).
    pub delays: Vec<i64>,
    /// Final slack distribution.
    pub slack: SlackResult,
    /// Minimum aligned slack after budgeting (negative = infeasible even
    /// with the fastest grades, per Proposition 1).
    pub min_slack: i64,
    /// Sum of chosen candidate areas (dedicated resources, before sharing).
    pub dedicated_area: f64,
    /// Number of budgeting moves performed (upgrades + downgrades).
    pub moves: usize,
}

impl BudgetResult {
    /// Chosen candidate for `o`, if it is resource-backed.
    #[must_use]
    pub fn candidate_of(&self, o: OpId) -> Option<Candidate> {
        self.chosen[o.0 as usize]
    }
}

/// One-call budgeting: derives choices from the library and runs
/// [`budget_with_choices`] with nothing locked.
///
/// # Errors
///
/// See [`op_choices`].
pub fn budget(
    dfg: &Dfg,
    tdfg: &TimedDfg,
    lib: &Library,
    clock_ps: u64,
    opts: &BudgetOptions,
) -> Result<BudgetResult> {
    let choices = op_choices(dfg, lib)?;
    Ok(budget_with_choices(tdfg, &choices, clock_ps, opts, |_| {
        None
    }))
}

/// Budgeting over explicit per-op choices. `locked(o) = Some(delay)` pins an
/// operation's delay (used by `Schedule_pass` for already-scheduled ops,
/// whose grades must not change retroactively).
///
/// # Panics
///
/// Panics if `clock_ps` is zero or `choices` is shorter than the id space.
#[must_use]
pub fn budget_with_choices(
    tdfg: &TimedDfg,
    choices: &[OpChoice],
    clock_ps: u64,
    opts: &BudgetOptions,
    locked: impl Fn(OpId) -> Option<u64>,
) -> BudgetResult {
    budget_with_choices_from(tdfg, choices, clock_ps, opts, locked, None)
}

/// Like [`budget_with_choices`], warm-started from `initial` grade indices
/// (per op id). `Schedule_pass` re-budgets after every edge; starting from
/// the previous solution makes each re-budget incremental instead of
/// re-deriving every grade from the slowest point.
///
/// # Panics
///
/// Panics if `clock_ps` is zero or `choices` is shorter than the id space.
#[must_use]
pub fn budget_with_choices_from(
    tdfg: &TimedDfg,
    choices: &[OpChoice],
    clock_ps: u64,
    opts: &BudgetOptions,
    locked: impl Fn(OpId) -> Option<u64>,
    initial: Option<&[Option<usize>]>,
) -> BudgetResult {
    assert!(clock_ps > 0, "clock period must be positive");
    assert!(choices.len() >= tdfg.len_ids(), "choices table too short");
    let t = clock_ps as i64;
    let n = tdfg.len_ids();
    let overhead = opts.overhead_ps as i64;
    let margin = ((opts.margin_frac * clock_ps as f64).round() as i64).max(0);

    let compute = |delays: &[i64]| -> SlackResult {
        match opts.engine {
            SlackEngine::Topological => compute_slack(tdfg, delays, t, opts.mode),
            SlackEngine::BellmanFord => compute_slack_bellman(tdfg, delays, t, opts.mode),
        }
    };

    // ---- initial point: slowest (paper) or fastest grades.
    let mut idx: Vec<Option<usize>> = vec![None; n];
    let mut delays: Vec<i64> = vec![0; n];
    let mut lock_flag: Vec<bool> = vec![false; n];
    // Per-op cap on how slow we may go (tightened when an aligned-mode
    // downgrade has to be reverted).
    let mut max_idx: Vec<usize> = vec![usize::MAX; n];
    for i in 0..n {
        let o = OpId(i as u32);
        if !tdfg.is_timed(o) {
            continue;
        }
        if let Some(d) = locked(o) {
            delays[i] = d as i64;
            lock_flag[i] = true;
            // Keep the matching candidate index if one matches exactly.
            idx[i] = choices[i]
                .candidates
                .iter()
                .position(|c| c.grade.delay_ps == d);
            continue;
        }
        let ch = &choices[i];
        if ch.candidates.is_empty() {
            delays[i] = ch.fixed_ps.unwrap_or(0) as i64;
        } else {
            let warm = initial
                .and_then(|init| init[i])
                .filter(|&k| k < ch.candidates.len());
            let k = warm.unwrap_or(if opts.start_fastest {
                0
            } else {
                ch.candidates.len() - 1
            });
            idx[i] = Some(k);
            delays[i] = ch.candidates[k].grade.delay_ps as i64 + overhead;
        }
    }

    let mut moves = 0usize;
    let max_moves = 4 * choices
        .iter()
        .map(|c| c.candidates.len())
        .sum::<usize>()
        .max(16);

    // ---- phase 1: repair negative aligned slack by upgrading critical ops.
    let mut r = compute(&delays);
    while r.min_slack() < 0 && moves < max_moves {
        // Candidates: ops with negative slack that can still be sped up,
        // preferring the binned-critical set (slack within `margin` of the
        // minimum), falling back to any negative-slack op once the most
        // critical ones are all at their fastest grade.
        let min = r.min_slack();
        let pick = |bin_only: bool| -> Option<(OpId, f64)> {
            let mut best: Option<(OpId, f64)> = None;
            for i in 0..n {
                let o = OpId(i as u32);
                if !tdfg.is_timed(o) || lock_flag[i] {
                    continue;
                }
                let s = r.slack[i];
                if s >= 0 || (bin_only && s > min + margin) {
                    continue;
                }
                let Some(k) = idx[i] else { continue };
                if k == 0 {
                    continue;
                }
                let cur = choices[i].candidates[k].grade;
                let fast = choices[i].candidates[k - 1].grade;
                let dgain = (cur.delay_ps - fast.delay_ps) as f64;
                let acost = (fast.area - cur.area).max(1e-9);
                let score = dgain / acost;
                if best.is_none_or(|(_, b)| score > b) {
                    best = Some((o, score));
                }
            }
            best
        };
        let Some((o, _)) = pick(true).or_else(|| pick(false)) else {
            break;
        };
        let i = o.0 as usize;
        let k = idx[i].unwrap() - 1;
        idx[i] = Some(k);
        delays[i] = choices[i].candidates[k].grade.delay_ps as i64 + overhead;
        moves += 1;
        r = compute(&delays);
    }

    // ---- phase 2: spend positive slack on cheaper grades.
    while moves < max_moves {
        let mut best: Option<(OpId, f64)> = None;
        for i in 0..n {
            let o = OpId(i as u32);
            if !tdfg.is_timed(o) || lock_flag[i] {
                continue;
            }
            let Some(k) = idx[i] else { continue };
            if k + 1 >= choices[i].candidates.len() || k + 1 > max_idx[i] {
                continue;
            }
            let s = r.slack[i];
            if s <= margin {
                continue; // binned as zero slack
            }
            let cur = choices[i].candidates[k].grade;
            let slow = choices[i].candidates[k + 1].grade;
            let dcost = (slow.delay_ps - cur.delay_ps) as i64;
            if dcost > s {
                continue;
            }
            let saving = cur.area - slow.area;
            if best.is_none_or(|(_, b)| saving > b) {
                best = Some((o, saving));
            }
        }
        let Some((o, _)) = best else { break };
        let i = o.0 as usize;
        let k = idx[i].unwrap();
        idx[i] = Some(k + 1);
        delays[i] = choices[i].candidates[k + 1].grade.delay_ps as i64 + overhead;
        moves += 1;
        let r2 = compute(&delays);
        // Revert when the downgrade cost more than the op's own slack
        // (aligned-mode boundary push) — detected as a drop of the global
        // minimum, or as any op turning negative that was not before (the
        // global minimum of an infeasible design can mask new violations).
        let made_negative = r2
            .slack
            .iter()
            .zip(r.slack.iter())
            .any(|(&s2, &s1)| s2 < 0 && s1 >= 0);
        if r2.min_slack() < r.min_slack().min(0) || made_negative {
            idx[i] = Some(k);
            delays[i] = choices[i].candidates[k].grade.delay_ps as i64 + overhead;
            max_idx[i] = k;
            continue;
        }
        r = r2;
    }

    let mut chosen: Vec<Option<Candidate>> = vec![None; n];
    let mut dedicated_area = 0.0;
    for i in 0..n {
        if let Some(k) = idx[i] {
            let c = choices[i].candidates[k];
            chosen[i] = Some(c);
            dedicated_area += c.grade.area;
        }
    }
    let min_slack = r.min_slack();
    BudgetResult {
        choice_idx: idx,
        chosen,
        delays,
        slack: r,
        min_slack,
        dedicated_area,
        moves,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use adhls_ir::builder::DesignBuilder;
    use adhls_ir::op::OpKind;
    use adhls_reslib::tsmc90;

    /// Two chained 8-bit muls under an 1100ps clock, 2-cycle budget: the
    /// paper's §II intuition — 540ps grades (area 575) suffice; the fastest
    /// 430ps grades (area 878) are wasted area.
    #[test]
    fn budget_picks_mid_grades_not_fastest() {
        let mut b = DesignBuilder::new("two_muls");
        let x = b.input("x", 8);
        let m1 = b.binop(OpKind::Mul, x, x, 8);
        let m2 = b.binop(OpKind::Mul, m1, m1, 8);
        b.soft_waits(1);
        b.write("y", m2);
        let d = b.finish().unwrap();
        let (info, spans) = d.analyze().unwrap();
        let tdfg = TimedDfg::build(&d.dfg, &info, &spans).unwrap();
        let lib = tsmc90::library();
        let r = budget(&d.dfg, &tdfg, &lib, 1100, &BudgetOptions::default()).unwrap();
        assert!(r.min_slack >= 0, "feasible: min slack {}", r.min_slack);
        for m in [m1, m2] {
            let c = r.candidate_of(m).unwrap();
            assert!(
                c.grade.delay_ps >= 540,
                "{m} should get a mid/slow grade, got {}",
                c.grade
            );
        }
        // Both muls in one cycle would need 2*delay <= 1100, met by 540+540.
        // With the 2-cycle budget they may even go slower; either way the
        // area must be far below 2x the fastest grade.
        assert!(r.dedicated_area < 2.0 * 878.0 * 0.8);
    }

    #[test]
    fn budget_upgrades_when_slowest_is_infeasible() {
        // One mul per cycle at 610ps under a 500ps clock is infeasible;
        // under 620ps the slowest grade fits and nothing upgrades. (The
        // write sits after a wait so its I/O delay does not chain with the
        // mul.)
        let mut b = DesignBuilder::new("upg");
        let x = b.input("x", 8);
        let m = b.binop(OpKind::Mul, x, x, 8);
        b.wait();
        b.write("y", m);
        let d = b.finish().unwrap();
        let (info, spans) = d.analyze().unwrap();
        let tdfg = TimedDfg::build(&d.dfg, &info, &spans).unwrap();
        let lib = tsmc90::library();
        let tight = budget(&d.dfg, &tdfg, &lib, 500, &BudgetOptions::default()).unwrap();
        assert!(tight.candidate_of(m).unwrap().grade.delay_ps <= 470);
        let loose = budget(&d.dfg, &tdfg, &lib, 620, &BudgetOptions::default()).unwrap();
        assert_eq!(loose.candidate_of(m).unwrap().grade.delay_ps, 610);
        assert!(loose.min_slack >= 0);
    }

    #[test]
    fn infeasible_design_reports_negative_slack() {
        // Three chained muls in one 500ps cycle can never fit (min 430each).
        let mut b = DesignBuilder::new("inf");
        let x = b.read("in", 8);
        let m1 = b.binop(OpKind::Mul, x, x, 8);
        let m2 = b.binop(OpKind::Mul, m1, m1, 8);
        let m3 = b.binop(OpKind::Mul, m2, m2, 8);
        b.write("y", m3);
        let d = b.finish().unwrap();
        let (info, spans) = d.analyze().unwrap();
        let tdfg = TimedDfg::build(&d.dfg, &info, &spans).unwrap();
        let lib = tsmc90::library();
        let r = budget(&d.dfg, &tdfg, &lib, 500, &BudgetOptions::default()).unwrap();
        assert!(r.min_slack < 0);
        // Everything on the chain was pushed to the fastest grade trying.
        for m in [m1, m2, m3] {
            assert_eq!(r.candidate_of(m).unwrap().grade.delay_ps, 430);
        }
    }

    #[test]
    fn budgeting_never_leaves_fixable_negative_slack() {
        // Whatever the clock, after budgeting either slack >= 0 or all
        // critical ops are already at their fastest grade.
        let mut b = DesignBuilder::new("mix");
        let x = b.input("x", 16);
        let a1 = b.binop(OpKind::Add, x, x, 16);
        let m1 = b.binop(OpKind::Mul, a1, x, 16);
        b.soft_waits(2);
        let a2 = b.binop(OpKind::Add, m1, x, 16);
        let m2 = b.binop(OpKind::Mul, a2, a1, 16);
        b.write("y", m2);
        let d = b.finish().unwrap();
        let (info, spans) = d.analyze().unwrap();
        let tdfg = TimedDfg::build(&d.dfg, &info, &spans).unwrap();
        let lib = tsmc90::library();
        for clock in [600u64, 900, 1200, 2000, 4000] {
            let r = budget(&d.dfg, &tdfg, &lib, clock, &BudgetOptions::default()).unwrap();
            if r.min_slack < 0 {
                for i in 0..tdfg.len_ids() {
                    let o = OpId(i as u32);
                    if tdfg.is_timed(o) && r.slack.slack[i] < 0 {
                        if let Some(k) = r.choice_idx[i] {
                            assert_eq!(k, 0, "critical {o} not at fastest grade");
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn locked_ops_keep_their_delay() {
        let mut b = DesignBuilder::new("lock");
        let x = b.input("x", 8);
        let m1 = b.binop(OpKind::Mul, x, x, 8);
        b.soft_waits(1);
        let m2 = b.binop(OpKind::Mul, m1, m1, 8);
        b.write("y", m2);
        let d = b.finish().unwrap();
        let (info, spans) = d.analyze().unwrap();
        let tdfg = TimedDfg::build(&d.dfg, &info, &spans).unwrap();
        let lib = tsmc90::library();
        let choices = op_choices(&d.dfg, &lib).unwrap();
        let r = budget_with_choices(&tdfg, &choices, 1100, &BudgetOptions::default(), |o| {
            (o == m1).then_some(470)
        });
        assert_eq!(r.delays[m1.0 as usize], 470);
        assert!(r.min_slack >= 0);
    }

    #[test]
    fn bellman_engine_gives_same_choices() {
        let mut b = DesignBuilder::new("bf");
        let x = b.input("x", 16);
        let a = b.binop(OpKind::Add, x, x, 16);
        let m = b.binop(OpKind::Mul, a, x, 16);
        b.soft_waits(1);
        b.write("y", m);
        let d = b.finish().unwrap();
        let (info, spans) = d.analyze().unwrap();
        let tdfg = TimedDfg::build(&d.dfg, &info, &spans).unwrap();
        let lib = tsmc90::library();
        let topo = budget(&d.dfg, &tdfg, &lib, 1500, &BudgetOptions::default()).unwrap();
        let bf = budget(
            &d.dfg,
            &tdfg,
            &lib,
            1500,
            &BudgetOptions {
                engine: SlackEngine::BellmanFord,
                ..Default::default()
            },
        )
        .unwrap();
        assert_eq!(topo.choice_idx, bf.choice_idx);
        assert_eq!(topo.delays, bf.delays);
    }
}
