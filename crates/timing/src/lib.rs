//! # adhls-timing — multi-cycle behavioral timing analysis
//!
//! The core analytical contribution of Kondratyev et al. (DATE 2012),
//! sections V–VI:
//!
//! * [`tdfg`] — the **timed DFG** (paper Definition V.2): the acyclic,
//!   constant-stripped DFG with a sink per operation and forward edges
//!   weighted by CFG latency.
//! * [`slack`] — **sequential arrival/required times and slack** (paper
//!   Definitions V.3–V.4, algorithm Fig. 6): two topological sweeps, linear
//!   in the number of DFG connections.
//! * [`aligned`] — the clock-boundary-respecting variant (**aligned
//!   slack**): an operation may not start so late in a cycle that it would
//!   straddle the clock edge.
//! * [`budget`](mod@budget) — **slack budgeting** (paper Fig. 7): fix negative aligned
//!   slack by speeding operations up, then spend positive slack by slowing
//!   them down to cheaper library grades, with slack binning.
//! * [`bellman`] — the Bellman-Ford constraint-graph formulation of prior
//!   work \[10\], kept as the runtime baseline of paper Table 5.
//! * [`feasible`] — the Proposition 1 feasibility pre-check.
//!
//! # Example
//!
//! ```
//! use adhls_ir::builder::DesignBuilder;
//! use adhls_ir::op::OpKind;
//! use adhls_timing::{budget, tdfg};
//! use adhls_reslib::tsmc90;
//!
//! let mut b = DesignBuilder::new("mac");
//! let x = b.input("x", 8);
//! let m = b.binop(OpKind::Mul, x, x, 8);
//! b.soft_waits(1); // 2-cycle budget
//! let m2 = b.binop(OpKind::Mul, m, m, 8);
//! b.write("y", m2);
//! let design = b.finish().unwrap();
//! let (info, spans) = design.analyze().unwrap();
//!
//! let lib = tsmc90::library();
//! let t = tdfg::TimedDfg::build(&design.dfg, &info, &spans).unwrap();
//! let result = budget::budget(&design.dfg, &t, &lib, 1100, &budget::BudgetOptions::default())
//!     .unwrap();
//! assert!(result.min_slack >= 0, "two muls in two 1100ps cycles is feasible");
//! ```

#![warn(missing_docs)]

pub mod aligned;
pub mod bellman;
pub mod budget;
pub mod feasible;
pub mod slack;
pub mod tdfg;

pub use budget::{budget, BudgetOptions, BudgetResult};
pub use slack::{compute_slack, SlackMode, SlackResult};
pub use tdfg::TimedDfg;
