//! Edge-case coverage for the slack analysis surface the recovery pass
//! leans on (`compute_slack`, `SlackResult::min_slack`,
//! `SlackResult::critical_ops`): empty results, all-critical designs,
//! negative slack, and margin-binning boundary behavior.

use adhls_ir::builder::DesignBuilder;
use adhls_ir::{Design, OpId, OpKind};
use adhls_timing::slack::{compute_slack, SlackMode, SlackResult};
use adhls_timing::TimedDfg;
use proptest::prelude::*;

/// A straight chain of `n` muls, each `delay_ps` long.
fn chain(n: usize, soft_waits: u32) -> (Design, Vec<OpId>) {
    let mut b = DesignBuilder::new("chain");
    let x = b.input("x", 16);
    let mut ops = Vec::new();
    let mut cur = x;
    for _ in 0..n {
        cur = b.binop(OpKind::Mul, cur, cur, 16);
        ops.push(cur);
    }
    b.soft_waits(soft_waits);
    b.write("out", cur);
    (b.finish().unwrap(), ops)
}

fn timed(d: &Design) -> TimedDfg {
    let (info, spans) = d.analyze().unwrap();
    TimedDfg::build(&d.dfg, &info, &spans).unwrap()
}

/// An empty result (no ops at all) reports `i64::MAX` min slack and an
/// empty critical set for every margin — the documented degenerate
/// behavior `recover_grades` relies on for op-free designs.
#[test]
fn empty_result_has_max_min_slack_and_no_critical_ops() {
    let r = SlackResult {
        mode: SlackMode::Aligned,
        clock_ps: 1000,
        arr: Vec::new(),
        req: Vec::new(),
        slack: Vec::new(),
    };
    assert_eq!(r.min_slack(), i64::MAX);
    assert!(r.critical_ops(0).is_empty());
    assert!(r.critical_ops(i64::MAX).is_empty());
}

/// Untimed ids carry `i64::MAX` slack; when every id is untimed the min
/// is `i64::MAX` and binning still returns nothing (the `min == MAX`
/// guard, not the filter, must catch this — `MAX <= MAX + margin` holds).
#[test]
fn all_untimed_ids_bin_to_nothing() {
    let r = SlackResult {
        mode: SlackMode::Plain,
        clock_ps: 500,
        arr: vec![0; 3],
        req: vec![i64::MAX; 3],
        slack: vec![i64::MAX; 3],
    };
    assert_eq!(r.min_slack(), i64::MAX);
    assert!(r.critical_ops(0).is_empty());
}

/// A uniform chain is all-critical: every timed op shares the minimum
/// slack, so zero-margin binning returns the whole chain.
#[test]
fn uniform_chain_is_all_critical() {
    let (d, ops) = chain(3, 0);
    let tdfg = timed(&d);
    let mut delays = vec![0i64; d.dfg.len_ids()];
    for o in &ops {
        delays[o.0 as usize] = 300;
    }
    let r = compute_slack(&tdfg, &delays, 1000, SlackMode::Plain);
    let crit = r.critical_ops(0);
    for o in &ops {
        assert!(crit.contains(o), "{o} missing from the critical set");
        assert_eq!(r.slack(*o), r.min_slack());
    }
}

/// Negative slack (an overconstrained chain) is reported, not clamped:
/// the min goes negative and the critical set at margin 0 holds exactly
/// the ops sitting at that negative minimum.
#[test]
fn negative_slack_is_reported_and_binnable() {
    let (d, ops) = chain(3, 0);
    let tdfg = timed(&d);
    let mut delays = vec![0i64; d.dfg.len_ids()];
    for o in &ops {
        delays[o.0 as usize] = 600;
    }
    // Three 600ps ops in one 1000ps cycle: 800ps over budget.
    let r = compute_slack(&tdfg, &delays, 1000, SlackMode::Aligned);
    assert!(
        r.min_slack() < 0,
        "expected infeasible, got {}",
        r.min_slack()
    );
    let crit = r.critical_ops(0);
    assert!(!crit.is_empty());
    for o in &crit {
        assert_eq!(r.slack(*o), r.min_slack());
    }
}

/// `critical_ops(i64::MAX)` must not overflow (`saturating_add`) and,
/// with a negative minimum, returns every timed op — including untimed
/// `i64::MAX` entries would be wrong only if the margin wrapped.
#[test]
fn huge_margin_saturates_instead_of_wrapping() {
    let (d, ops) = chain(2, 0);
    let tdfg = timed(&d);
    let mut delays = vec![0i64; d.dfg.len_ids()];
    for o in &ops {
        delays[o.0 as usize] = 900;
    }
    let r = compute_slack(&tdfg, &delays, 1000, SlackMode::Aligned);
    assert!(r.min_slack() < 0);
    let all = r.critical_ops(i64::MAX);
    // Saturation makes the bound MAX, so every id (timed or not) passes
    // the filter; the point is that it does not wrap to a tiny bound.
    assert_eq!(all.len(), d.dfg.len_ids());
    assert!(r.critical_ops(0).len() <= all.len());
}

#[derive(Debug, Clone)]
struct Recipe {
    ops: Vec<(u8, usize, usize)>,
    soft_states: u32,
}

fn recipe() -> impl Strategy<Value = Recipe> {
    (
        prop::collection::vec((0u8..4, 0usize..64, 0usize..64), 1..24),
        0u32..4,
    )
        .prop_map(|(ops, soft_states)| Recipe { ops, soft_states })
}

fn build(r: &Recipe) -> Design {
    let mut b = DesignBuilder::new("sprop");
    let x = b.input("x", 16);
    let y = b.input("y", 16);
    let mut pool = vec![x, y];
    for &(k, ia, ib) in &r.ops {
        let a = pool[ia % pool.len()];
        let c = pool[ib % pool.len()];
        let kind = match k {
            0 => OpKind::Add,
            1 => OpKind::Sub,
            2 => OpKind::Mul,
            _ => OpKind::Xor,
        };
        pool.push(b.binop(kind, a, c, 16));
    }
    b.soft_waits(r.soft_states);
    b.write("out", *pool.last().unwrap());
    b.finish().unwrap()
}

fn delays_from(seed: &[u16], n: usize) -> Vec<i64> {
    (0..n)
        .map(|i| i64::from(seed[i % seed.len()] % 1500) + 1)
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// `min_slack` is exactly the minimum over timed ops (untimed ids sit
    /// at `i64::MAX` and never win), in both modes.
    #[test]
    fn min_slack_is_the_timed_minimum(
        r in recipe(),
        dseed in prop::collection::vec(1u16..2000, 1..8),
        clock in 300i64..3000,
    ) {
        let d = build(&r);
        let tdfg = timed(&d);
        let delays = delays_from(&dseed, d.dfg.len_ids());
        for mode in [SlackMode::Plain, SlackMode::Aligned] {
            let res = compute_slack(&tdfg, &delays, clock, mode);
            let timed_min = d
                .dfg
                .op_ids()
                .filter(|&o| tdfg.is_timed(o))
                .map(|o| res.slack(o))
                .min()
                .unwrap_or(i64::MAX);
            prop_assert_eq!(res.min_slack(), timed_min, "{:?}", mode);
        }
    }

    /// Binning is sound and monotone: every binned op's slack is within
    /// the margin of the minimum, the zero-margin bin is never empty (on
    /// a timed design), and growing the margin only grows the bin.
    #[test]
    fn critical_binning_is_sound_and_monotone(
        r in recipe(),
        dseed in prop::collection::vec(1u16..2000, 1..8),
        clock in 300i64..3000,
        m1 in 0i64..400,
        m2 in 0i64..400,
    ) {
        let d = build(&r);
        let tdfg = timed(&d);
        let delays = delays_from(&dseed, d.dfg.len_ids());
        let res = compute_slack(&tdfg, &delays, clock, SlackMode::Aligned);
        let min = res.min_slack();
        prop_assume!(min != i64::MAX);
        let (lo, hi) = (m1.min(m2), m1.max(m2));
        let tight = res.critical_ops(lo);
        let loose = res.critical_ops(hi);
        prop_assert!(!res.critical_ops(0).is_empty());
        for o in &tight {
            prop_assert!(res.slack(*o) <= min + lo);
            prop_assert!(loose.contains(o), "{o} fell out of a larger bin");
        }
    }

    /// Aligned analysis is never more optimistic than plain: rounding
    /// arrivals up and requireds down can only shrink per-op slack.
    #[test]
    fn aligned_slack_never_exceeds_plain(
        r in recipe(),
        dseed in prop::collection::vec(1u16..2000, 1..8),
        clock in 300i64..3000,
    ) {
        let d = build(&r);
        let tdfg = timed(&d);
        let delays = delays_from(&dseed, d.dfg.len_ids());
        let plain = compute_slack(&tdfg, &delays, clock, SlackMode::Plain);
        let aligned = compute_slack(&tdfg, &delays, clock, SlackMode::Aligned);
        for o in d.dfg.op_ids() {
            if tdfg.is_timed(o) {
                prop_assert!(
                    aligned.slack(o) <= plain.slack(o),
                    "{o}: aligned {} > plain {}",
                    aligned.slack(o),
                    plain.slack(o)
                );
            }
        }
    }

    /// Scaling the clock up from an infeasible point eventually clears
    /// the negative slack, and min slack is monotone along the way.
    #[test]
    fn min_slack_is_monotone_in_clock(
        r in recipe(),
        dseed in prop::collection::vec(1u16..2000, 1..8),
        base in 300i64..1500,
        bump in 1i64..2000,
    ) {
        let d = build(&r);
        let tdfg = timed(&d);
        let delays = delays_from(&dseed, d.dfg.len_ids());
        let tight = compute_slack(&tdfg, &delays, base, SlackMode::Plain);
        let loose = compute_slack(&tdfg, &delays, base + bump, SlackMode::Plain);
        prop_assert!(
            loose.min_slack() >= tight.min_slack(),
            "min slack dropped {} -> {} when the clock grew",
            tight.min_slack(),
            loose.min_slack()
        );
    }
}
