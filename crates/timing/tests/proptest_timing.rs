//! Property-based tests for the timing analyses: the linear sweep agrees
//! with Bellman-Ford everywhere, slack is monotone in delays, budgeting
//! never worsens feasibility and respects locks.

use adhls_ir::builder::DesignBuilder;
use adhls_ir::{Design, OpId, OpKind};
use adhls_reslib::tsmc90;
use adhls_timing::bellman::compute_slack_bellman;
use adhls_timing::budget::{budget, BudgetOptions};
use adhls_timing::slack::{compute_slack, SlackMode};
use adhls_timing::TimedDfg;
use proptest::prelude::*;

#[derive(Debug, Clone)]
struct Recipe {
    ops: Vec<(u8, usize, usize)>,
    soft_states: u32,
}

fn recipe() -> impl Strategy<Value = Recipe> {
    (
        prop::collection::vec((0u8..4, 0usize..64, 0usize..64), 1..32),
        0u32..4,
    )
        .prop_map(|(ops, soft_states)| Recipe { ops, soft_states })
}

fn build(r: &Recipe) -> (Design, Vec<OpId>) {
    let mut b = DesignBuilder::new("tprop");
    let x = b.input("x", 16);
    let y = b.input("y", 16);
    let mut pool = vec![x, y];
    for &(k, ia, ib) in &r.ops {
        let a = pool[ia % pool.len()];
        let c = pool[ib % pool.len()];
        let kind = match k {
            0 => OpKind::Add,
            1 => OpKind::Sub,
            2 => OpKind::Mul,
            _ => OpKind::Xor,
        };
        pool.push(b.binop(kind, a, c, 16));
    }
    b.soft_waits(r.soft_states);
    b.write("out", *pool.last().unwrap());
    (b.finish().unwrap(), pool)
}

fn delays_from(seed: &[u16], n: usize) -> Vec<i64> {
    (0..n)
        .map(|i| i64::from(seed[i % seed.len()] % 1500) + 1)
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The paper's linear two-sweep algorithm and the Bellman-Ford baseline
    /// agree exactly, in both plain and aligned modes.
    #[test]
    fn topological_equals_bellman_ford(
        r in recipe(),
        dseed in prop::collection::vec(1u16..2000, 1..8),
        clock in 300i64..3000,
    ) {
        let (d, _) = build(&r);
        let (info, spans) = d.analyze().unwrap();
        let tdfg = TimedDfg::build(&d.dfg, &info, &spans).unwrap();
        let delays = delays_from(&dseed, d.dfg.len_ids());
        for mode in [SlackMode::Plain, SlackMode::Aligned] {
            let a = compute_slack(&tdfg, &delays, clock, mode);
            let b = compute_slack_bellman(&tdfg, &delays, clock, mode);
            prop_assert_eq!(&a.arr, &b.arr, "{:?} arrivals differ", mode);
            prop_assert_eq!(&a.req, &b.req, "{:?} requireds differ", mode);
            prop_assert_eq!(&a.slack, &b.slack, "{:?} slacks differ", mode);
        }
    }

    /// Speeding any single op up never decreases any op's slack (monotone
    /// analysis), in plain mode.
    #[test]
    fn slack_is_monotone_in_delays(
        r in recipe(),
        dseed in prop::collection::vec(1u16..2000, 1..8),
        victim in 0usize..64,
        cut in 1i64..500,
    ) {
        let (d, pool) = build(&r);
        let (info, spans) = d.analyze().unwrap();
        let tdfg = TimedDfg::build(&d.dfg, &info, &spans).unwrap();
        let delays = delays_from(&dseed, d.dfg.len_ids());
        let v = pool[victim % pool.len()];
        let mut faster = delays.clone();
        faster[v.0 as usize] = (faster[v.0 as usize] - cut).max(1);
        let before = compute_slack(&tdfg, &delays, 2000, SlackMode::Plain);
        let after = compute_slack(&tdfg, &faster, 2000, SlackMode::Plain);
        for o in d.dfg.op_ids() {
            if tdfg.is_timed(o) {
                prop_assert!(
                    after.slack(o) >= before.slack(o),
                    "{o}: slack dropped {} -> {} after speeding {v}",
                    before.slack(o), after.slack(o)
                );
            }
        }
    }

    /// Budgeting output is feasible-or-fastest: either min slack >= 0, or
    /// every negative-slack op sits at its fastest grade (Proposition 1's
    /// infeasibility witness).
    #[test]
    fn budget_is_feasible_or_fastest(r in recipe(), clock in 500u64..3500) {
        let (d, _) = build(&r);
        let (info, spans) = d.analyze().unwrap();
        let tdfg = TimedDfg::build(&d.dfg, &info, &spans).unwrap();
        let lib = tsmc90::library();
        let res = budget(&d.dfg, &tdfg, &lib, clock, &BudgetOptions::default()).unwrap();
        if res.min_slack < 0 {
            for o in d.dfg.op_ids() {
                if tdfg.is_timed(o) && res.slack.slack(o) < 0 {
                    if let Some(k) = res.choice_idx[o.0 as usize] {
                        prop_assert_eq!(k, 0, "{} negative but not fastest", o);
                    }
                }
            }
        }
        // Chosen delays always come from the candidate lists.
        for o in d.dfg.op_ids() {
            if let Some(c) = res.candidate_of(o) {
                prop_assert_eq!(res.delays[o.0 as usize], c.grade.delay_ps as i64);
            }
        }
    }

    /// A feasible budget solution stays feasible when re-checked with its
    /// own delays (self-consistency of the aligned analysis).
    #[test]
    fn budget_solution_rechecks_clean(r in recipe(), clock in 800u64..3500) {
        let (d, _) = build(&r);
        let (info, spans) = d.analyze().unwrap();
        let tdfg = TimedDfg::build(&d.dfg, &info, &spans).unwrap();
        let lib = tsmc90::library();
        let res = budget(&d.dfg, &tdfg, &lib, clock, &BudgetOptions::default()).unwrap();
        prop_assume!(res.min_slack >= 0);
        let recheck =
            compute_slack(&tdfg, &res.delays, clock as i64, SlackMode::Aligned);
        prop_assert!(recheck.min_slack() >= 0);
        prop_assert_eq!(recheck.min_slack(), res.min_slack);
    }

    /// Budgeting with a larger clock never yields a larger dedicated area
    /// (more slack to spend can only help), comparing feasible solutions.
    #[test]
    fn budget_area_monotone_in_clock(r in recipe()) {
        let (d, _) = build(&r);
        let (info, spans) = d.analyze().unwrap();
        let tdfg = TimedDfg::build(&d.dfg, &info, &spans).unwrap();
        let lib = tsmc90::library();
        let tight = budget(&d.dfg, &tdfg, &lib, 1200, &BudgetOptions::default()).unwrap();
        let loose = budget(&d.dfg, &tdfg, &lib, 3600, &BudgetOptions::default()).unwrap();
        prop_assume!(tight.min_slack >= 0 && loose.min_slack >= 0);
        prop_assert!(
            loose.dedicated_area <= tight.dedicated_area + 1e-9,
            "loose {} > tight {}",
            loose.dedicated_area,
            tight.dedicated_area
        );
    }
}
