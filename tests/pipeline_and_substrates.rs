//! Integration tests for the supporting substrates: pipelined scheduling,
//! the FIR loop workload, matmul, the DSL frontend end-to-end, netlist
//! emission, and library round-tripping.

use adhls::core::netlist;
use adhls::prelude::*;
use adhls::reslib::text;
use adhls::workloads::{fir, idct, matmul};

/// Pipelining with a smaller initiation interval costs resources but
/// raises throughput: II=4 needs strictly more multipliers than II=16 on
/// the same 16-cycle IDCT.
#[test]
fn pipelining_trades_area_for_throughput() {
    let lib = tsmc90::library();
    let design = idct::build_2d(&idct::IdctConfig {
        cycles: 16,
        pipelined: None,
    });
    let mut counts = Vec::new();
    for ii in [16u32, 4] {
        let r = run_hls(
            &design,
            &lib,
            &HlsOptions {
                clock_ps: 2200,
                flow: Flow::SlackBased,
                pipeline_ii: Some(ii),
                ..Default::default()
            },
        )
        .expect("pipelined point schedules");
        counts.push((
            ii,
            r.schedule.allocation.count(ResClass::Multiplier),
            r.area.total,
        ));
    }
    let (&(_, m16, a16), &(_, m4, a4)) = (&counts[0], &counts[1]);
    assert!(
        m4 > m16,
        "II=4 should need more multipliers ({m4} vs {m16})"
    );
    assert!(a4 > a16, "II=4 should cost more area ({a4:.0} vs {a16:.0})");
}

/// The FIR filter — a loop with loop-carried state — schedules and streams
/// correctly at the scheduled placement.
#[test]
fn fir_loop_schedules_and_streams() {
    let cfg = fir::FirConfig {
        coeffs: vec![3, -5, 11, 7],
        cycles: 3,
        width: 16,
    };
    let design = fir::build(&cfg);
    let lib = tsmc90::library();
    let r = run_hls(
        &design,
        &lib,
        &HlsOptions {
            clock_ps: 2000,
            flow: Flow::SlackBased,
            ..Default::default()
        },
    )
    .expect("fir schedules");
    let input: Vec<i64> = vec![1, -2, 3, 4, -5, 6, 7, -8, 9, 10];
    let stim = Stimulus::new().stream("in", input.iter().map(|&v| v as u64 & 0xFFFF).collect());
    let placed = run_placed(&design, &stim, 100_000, |o| r.schedule.edge(o)).unwrap();
    let expect: Vec<u64> = fir::golden(&cfg, &input)
        .iter()
        .map(|&v| v as u64 & 0xFFFF)
        .collect();
    assert_eq!(placed.outputs["out"], expect);
}

/// Matrix multiply at two latency budgets: the looser budget needs fewer
/// multipliers.
#[test]
fn matmul_budget_scales_resources() {
    let lib = tsmc90::library();
    let tight = matmul::build(&matmul::MatmulConfig {
        n: 3,
        cycles: 3,
        width: 16,
    });
    let loose = matmul::build(&matmul::MatmulConfig {
        n: 3,
        cycles: 12,
        width: 16,
    });
    let opts = |_c| HlsOptions {
        clock_ps: 2400,
        flow: Flow::SlackBased,
        ..Default::default()
    };
    let rt = run_hls(&tight, &lib, &opts(())).unwrap();
    let rl = run_hls(&loose, &lib, &opts(())).unwrap();
    let mt = rt.schedule.allocation.count(ResClass::Multiplier);
    let ml = rl.schedule.allocation.count(ResClass::Multiplier);
    assert!(
        ml < mt,
        "loose budget should share multipliers ({ml} vs {mt})"
    );
}

/// DSL source with a bounded loop and a conditional compiles, schedules,
/// and simulates identically before/after scheduling.
#[test]
fn dsl_program_end_to_end() {
    let src = "
    proc clip_acc(in a: u16, out y: u16) {
        let acc: u16 = 0;
        for i in 0..6 {
            let v = read(a);
            if v > 100 { v = 100; }
            acc = acc + v;
            wait;
        }
        write(y, acc);
    }";
    let design = adhls::ir::frontend::compile(src).expect("compiles");
    let lib = tsmc90::library();
    let r = run_hls(
        &design,
        &lib,
        &HlsOptions {
            clock_ps: 2000,
            flow: Flow::SlackBased,
            ..Default::default()
        },
    )
    .expect("schedules");
    let stim = Stimulus::new().stream("a", vec![50, 200, 99, 150, 1, 100]);
    let reference = run(&design, &stim, 10_000).unwrap();
    assert_eq!(reference.outputs["y"], vec![50 + 100 + 99 + 100 + 1 + 100]);
    let placed = run_placed(&design, &stim, 10_000, |o| r.schedule.edge(o)).unwrap();
    assert_eq!(placed.outputs, reference.outputs);
}

/// Netlist emission covers ports, FUs and states for a scheduled design.
#[test]
fn netlist_emission_is_complete() {
    let design = idct::build_1d(4);
    let lib = tsmc90::library();
    let r = run_hls(
        &design,
        &lib,
        &HlsOptions {
            clock_ps: 2200,
            flow: Flow::SlackBased,
            ..Default::default()
        },
    )
    .unwrap();
    let info = design.validate().unwrap();
    let text = netlist::emit(&design, &info, &r.schedule, &r.regs);
    assert!(text.contains("module idct8"));
    assert!(text.contains("endmodule"));
    for i in 0..8 {
        assert!(text.contains(&format!("x{i}")), "input x{i} missing");
        assert!(text.contains(&format!("y{i}")), "output y{i} missing");
    }
    assert!(text.contains("multiplier"));
}

/// The library text format round-trips the full TSMC-90nm dataset.
#[test]
fn library_roundtrip_through_text() {
    let lib = tsmc90::library();
    let dumped = text::to_text(&lib);
    let back = text::from_text(&dumped).expect("parses");
    assert_eq!(lib, back);
    // And the parsed library drives a full HLS run.
    let (design, _) = adhls::workloads::interpolation::paper_example();
    let r = run_hls(
        &design,
        &back,
        &HlsOptions {
            clock_ps: 1500,
            flow: Flow::SlackBased,
            ..Default::default()
        },
    );
    assert!(r.is_ok());
}
