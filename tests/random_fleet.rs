//! The "customer designs" experiment (paper §VII: ">100 customer designs
//! ... average final area improvement of about 5%"), on the synthetic
//! fleet documented in DESIGN.md §5.

use adhls::prelude::*;
use adhls::workloads::random;

/// Every fleet design synthesizes under both flows; the slack flow wins on
/// average and never catastrophically regresses.
#[test]
fn fleet_average_saving_is_positive() {
    let lib = tsmc90::library();
    let fleet = random::fleet(24, 7);
    let mut savings = Vec::new();
    for (name, design, clock) in &fleet {
        let conv = run_hls(
            design,
            &lib,
            &HlsOptions {
                clock_ps: *clock,
                flow: Flow::Conventional,
                ..Default::default()
            },
        );
        let slack = run_hls(
            design,
            &lib,
            &HlsOptions {
                clock_ps: *clock,
                flow: Flow::SlackBased,
                ..Default::default()
            },
        );
        let (Ok(conv), Ok(slack)) = (conv, slack) else {
            continue; // a random (design, clock) pair may be overconstrained
        };
        let save = (conv.area.total - slack.area.total) / conv.area.total * 100.0;
        assert!(
            save > -20.0,
            "{name}: catastrophic regression {save:.1}% (conv {}, slack {})",
            conv.area.total,
            slack.area.total
        );
        savings.push(save);
    }
    assert!(
        savings.len() >= 16,
        "too many overconstrained fleet members"
    );
    let avg = savings.iter().sum::<f64>() / savings.len() as f64;
    assert!(
        avg > 2.0,
        "paper reports ~5% average on customer designs; measured {avg:.1}%"
    );
}

/// Fleet schedules preserve semantics: each design produces identical
/// outputs under birth placement and scheduled placement.
#[test]
fn fleet_schedules_preserve_semantics() {
    let lib = tsmc90::library();
    for (name, design, clock) in random::fleet(10, 99) {
        let Ok(r) = run_hls(
            &design,
            &lib,
            &HlsOptions {
                clock_ps: clock,
                flow: Flow::SlackBased,
                ..Default::default()
            },
        ) else {
            continue;
        };
        let mut stim = Stimulus::new();
        for o in design.inputs() {
            if let Some(n) = design.dfg.op(o).name() {
                stim = stim.input(n, (o.0 as u64).wrapping_mul(37) % 251);
            }
        }
        let reference = run(&design, &stim, 10_000).unwrap();
        let placed = run_placed(&design, &stim, 10_000, |o| r.schedule.edge(o)).unwrap();
        assert_eq!(placed.outputs, reference.outputs, "{name} outputs changed");
    }
}
