//! Cross-crate integration tests asserting the *shape* of every paper
//! experiment (exact measured values live in EXPERIMENTS.md; these tests
//! pin the qualitative claims so regressions are caught).

use adhls::core::dse::{explore, summarize, DsePoint};
use adhls::prelude::*;
use adhls::workloads::{idct, interpolation, resizer};

/// Paper Table 2: on the interpolation example, both baselines waste ≥ 30%
/// area relative to the slack-based flow, which lands within 5% of the
/// paper's optimum (2180).
#[test]
fn table2_interpolation_shape() {
    let (design, _) = interpolation::paper_example();
    let mut lib = tsmc90::library();
    lib.set_io_delay_ps(0);
    let area = |flow: Flow| -> f64 {
        let opts = HlsOptions {
            clock_ps: 1100,
            flow,
            zero_overhead: true,
            ..Default::default()
        };
        run_hls(&design, &lib, &opts)
            .expect("schedulable")
            .area
            .total
    };
    let conv = area(Flow::Conventional);
    let slow = area(Flow::SlowestUpgrade);
    let slack = area(Flow::SlackBased);
    assert!(
        (slack - 2180.0).abs() / 2180.0 < 0.05,
        "slack-based should land near the paper optimum 2180, got {slack}"
    );
    assert!(
        slack <= conv * 0.70,
        "paper: ~36% saving over Case 1; got conv {conv} vs slack {slack}"
    );
    assert!(
        slack <= slow,
        "slack-based must not lose to Case 2 ({slow})"
    );
    // Case 1 uses the fastest mults, paying close to 3x878 for them.
    assert!(
        conv > 3.0 * 800.0,
        "Case 1 should pay for fast multipliers, got {conv}"
    );
}

/// Paper Table 2 structure: 3 multipliers + 2 adders in every flow.
#[test]
fn table2_resource_structure() {
    let (design, _) = interpolation::paper_example();
    let mut lib = tsmc90::library();
    lib.set_io_delay_ps(0);
    for flow in [Flow::Conventional, Flow::SlowestUpgrade, Flow::SlackBased] {
        let opts = HlsOptions {
            clock_ps: 1100,
            flow,
            zero_overhead: true,
            ..Default::default()
        };
        let r = run_hls(&design, &lib, &opts).unwrap();
        assert_eq!(
            r.schedule.allocation.count(ResClass::Multiplier),
            3,
            "{flow:?}: paper needs exactly 3 multipliers"
        );
        let adders = r.schedule.allocation.len() - 3;
        assert_eq!(adders, 2, "{flow:?}: paper needs exactly 2 adders");
    }
}

/// A 5-point slice of the Table 4 sweep: positive average saving, loose
/// points save double digits, and every point schedules.
#[test]
fn table4_mini_sweep_shape() {
    let lib = tsmc90::library();
    let pick = [0usize, 3, 7, 9, 12]; // loose, mid, tight, critical, pipelined
    let all = idct::table4_points();
    let points: Vec<DsePoint> = pick
        .iter()
        .map(|&i| {
            let (name, cfg, clock) = all[i].clone();
            DsePoint {
                name,
                design: idct::build_2d(&cfg),
                clock_ps: clock,
                pipeline_ii: cfg.pipelined,
                cycles_per_item: cfg.pipelined.unwrap_or(cfg.cycles),
            }
        })
        .collect();
    let rows = explore(&points, &lib, &HlsOptions::default()).expect("all points schedule");
    let s = summarize(&rows).expect("non-empty sweep");
    assert!(
        s.avg_save_pct > 5.0,
        "average saving too low: {:.1}%",
        s.avg_save_pct
    );
    assert!(
        rows[0].save_pct > 10.0,
        "loosest point should save double digits: {:.1}%",
        rows[0].save_pct
    );
    assert!(s.throughput_range.expect("positive throughputs") > 2.0);
}

/// The resizer (control flow with a fork/join and a division) synthesizes
/// with every flow, and the slack flow wins on area.
#[test]
fn resizer_full_flow() {
    let design = resizer::build();
    let lib = tsmc90::library();
    let conv = run_hls(
        &design,
        &lib,
        &HlsOptions {
            clock_ps: 2000,
            flow: Flow::Conventional,
            ..Default::default()
        },
    )
    .unwrap();
    let slack = run_hls(
        &design,
        &lib,
        &HlsOptions {
            clock_ps: 2000,
            flow: Flow::SlackBased,
            ..Default::default()
        },
    )
    .unwrap();
    assert!(slack.area.total < conv.area.total);
    // Semantics preserved at the scheduled placement.
    let stim = Stimulus::new()
        .stream("a", vec![200, 10])
        .stream("b", vec![7]);
    let reference = run(&design, &stim, 10_000).unwrap();
    for r in [&conv, &slack] {
        let placed = run_placed(&design, &stim, 10_000, |o| r.schedule.edge(o)).unwrap();
        assert_eq!(placed.outputs, reference.outputs);
    }
}

/// The scheduled IDCT still computes correct transforms: run the schedule
/// placement in the interpreter against the golden model.
#[test]
fn idct_schedule_is_functionally_correct() {
    let cfg = idct::IdctConfig {
        cycles: 16,
        pipelined: None,
    };
    let design = idct::build_2d(&cfg);
    let lib = tsmc90::library();
    let r = run_hls(
        &design,
        &lib,
        &HlsOptions {
            clock_ps: 2200,
            flow: Flow::SlackBased,
            ..Default::default()
        },
    )
    .unwrap();
    let mut input = [0i64; 64];
    for (i, v) in input.iter_mut().enumerate() {
        *v = ((i as i64 * 53) % 401) - 200;
    }
    let mut stim = Stimulus::new();
    for (i, v) in input.iter().enumerate() {
        stim = stim.input(format!("in{i}"), *v as u64 & 0xFF_FFFF);
    }
    let placed = run_placed(&design, &stim, 10_000, |o| r.schedule.edge(o)).unwrap();
    let golden = idct::golden_2d(&input);
    for (i, exp) in golden.iter().enumerate() {
        assert_eq!(
            placed.outputs[&format!("out{i}")],
            vec![*exp as u64 & 0xFF_FFFF],
            "out{i} mismatch"
        );
    }
}

/// Proposition 1 in practice: if the pre-scheduling aligned-slack check is
/// infeasible at the fastest grades, run_hls fails; if comfortably
/// feasible, it succeeds.
#[test]
fn feasibility_precheck_matches_outcomes() {
    let (design, _) = interpolation::paper_example();
    let lib = tsmc90::library();
    // 500 ps cannot fit even one fastest multiply + sharing overhead chain.
    let err = run_hls(
        &design,
        &lib,
        &HlsOptions {
            clock_ps: 400,
            flow: Flow::SlackBased,
            ..Default::default()
        },
    );
    assert!(err.is_err(), "overconstrained clock must fail");
    let ok = run_hls(
        &design,
        &lib,
        &HlsOptions {
            clock_ps: 2000,
            flow: Flow::SlackBased,
            ..Default::default()
        },
    );
    assert!(ok.is_ok());
}
