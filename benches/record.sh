#!/usr/bin/env bash
# Record a per-PR performance snapshot (the ROADMAP's perf-trajectory
# item): run the seven exploration benches in full-measurement mode with
# telemetry metering on, then assemble the timings and each bench
# binary's registry snapshot into one BENCH_<n>.json at the repo root.
#
# Usage:   benches/record.sh [out.json]     default: BENCH_9.json
# Knobs:   ADHLS_BENCH_SAMPLE_SIZE=<n>      samples per benchmark, pinned
#                                           across every target (default 5)
#
# Timings recorded here have the meters live (that is the point — the
# snapshot proves what the instrumented stack costs); the
# `explore/idct_parallel_t4[_telemetry]` pair inside explore_parallel is
# the controlled off-vs-on overhead comparison.
set -euo pipefail
cd "$(dirname "$0")/.."

OUT="${1:-BENCH_9.json}"
SAMPLES="${ADHLS_BENCH_SAMPLE_SIZE:-5}"
DIR="$(mktemp -d)"
trap 'rm -rf "$DIR"' EXIT

BENCHES="explore_parallel explore_adaptive explore_power serve_throughput explore_constrained explore_incremental explore_recovery"
for b in $BENCHES; do
  echo "== $b ($SAMPLES samples) =="
  ADHLS_BENCH_METRICS_DIR="$DIR" ADHLS_BENCH_SAMPLE_SIZE="$SAMPLES" \
    cargo bench -q -p adhls-bench --bench "$b" -- --bench | tee "$DIR/$b.out"
done

RECORDED_AT="$(date -u +%Y-%m-%dT%H:%M:%SZ)" \
COMMIT="$(git rev-parse --short HEAD 2>/dev/null || echo unknown)" \
SAMPLES="$SAMPLES" \
python3 - "$OUT" "$DIR" $BENCHES <<'PY'
import json
import os
import re
import sys

out, d, benches = sys.argv[1], sys.argv[2], sys.argv[3:]
unit = {"ns": 1.0, "µs": 1e3, "us": 1e3, "ms": 1e6, "s": 1e9}
line = re.compile(r"^(\S+)\s+time:\s+\[(\S+) (\S+) (\S+) (\S+) (\S+) (\S+)\]")
doc = {
    "recorded_at": os.environ["RECORDED_AT"],
    "commit": os.environ["COMMIT"],
    "samples_per_bench": int(os.environ["SAMPLES"]),
    "benches": {},
}
for b in benches:
    timings = {}
    with open(f"{d}/{b}.out") as f:
        for raw in f:
            m = line.match(raw)
            if m:
                bid, mn, mnu, me, meu, mx, mxu = m.groups()
                timings[bid] = {
                    "min_ns": float(mn) * unit[mnu],
                    "mean_ns": float(me) * unit[meu],
                    "max_ns": float(mx) * unit[mxu],
                }
    if not timings:
        sys.exit(f"{b}: no timing lines parsed (was the bench run in smoke mode?)")
    try:
        with open(f"{d}/{b}.metrics.json") as f:
            metrics = json.load(f)
    except FileNotFoundError:
        metrics = None
    doc["benches"][b] = {"timings": timings, "metrics": metrics}
with open(out, "w") as f:
    json.dump(doc, f, indent=1)
    f.write("\n")
print(f"wrote {out}")
PY
